// Tests for later additions: tile LU (no pivoting), Chrome trace export,
// ready pools, and the StarPU performance model.
#include <gtest/gtest.h>

#include <fstream>

#include "harness/experiment.hpp"
#include "linalg/blas_kernels.hpp"
#include "linalg/tile_lu.hpp"
#include "sched/factory.hpp"
#include "sched/ready_pools.hpp"
#include "sched/starpu/perf_model.hpp"
#include "sched/submitter.hpp"
#include "support/error.hpp"
#include "trace/chrome_export.hpp"

namespace tasksim {
namespace {

// ---------------------------------------------------------------- tile LU

TEST(LuKernels, DgetrfFactorsAndDetectsZeroPivot) {
  Rng rng(1);
  const int n = 8;
  const linalg::Matrix a0 = linalg::Matrix::random_diag_dominant(n, rng);
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) a[j * n + i] = a0(i, j);
  }
  ASSERT_EQ(linalg::dgetrf_nopiv(n, a.data(), n), 0);

  linalg::Matrix l = linalg::Matrix::identity(n);
  linalg::Matrix u(n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = j + 1; i < n; ++i) l(i, j) = a[j * n + i];
    for (int i = 0; i <= j; ++i) u(i, j) = a[j * n + i];
  }
  EXPECT_LT(linalg::relative_error(linalg::matmul(l, u), a0), 1e-12);

  std::vector<double> singular = {0.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(linalg::dgetrf_nopiv(2, singular.data(), 2), 1);
}

TEST(LuKernels, TrsmLeftLowerUnitSolves) {
  Rng rng(2);
  const int n = 6, m = 4;
  linalg::Matrix l = linalg::Matrix::random(n, n, rng);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i <= j; ++i) l(i, j) = (i == j) ? 1.0 : 0.0;
  }
  const linalg::Matrix b = linalg::Matrix::random(n, m, rng);
  linalg::Matrix x = b;
  linalg::dtrsm_left_lower_unit(n, m, l.data(), n, x.data(), n);
  EXPECT_LT(linalg::relative_error(linalg::matmul(l, x), b), 1e-12);
}

TEST(LuKernels, TrsmRightUpperSolves) {
  Rng rng(3);
  const int m = 5, n = 5;
  linalg::Matrix u = linalg::upper_triangle(linalg::Matrix::random(n, n, rng));
  for (int j = 0; j < n; ++j) u(j, j) += 3.0;
  const linalg::Matrix b = linalg::Matrix::random(m, n, rng);
  linalg::Matrix x = b;
  linalg::dtrsm_right_upper(m, n, u.data(), n, x.data(), m);
  EXPECT_LT(linalg::relative_error(linalg::matmul(x, u), b), 1e-12);
  linalg::Matrix singular(1, 1);
  double bb = 1.0;
  EXPECT_THROW(
      linalg::dtrsm_right_upper(1, 1, singular.data(), 1, &bb, 1),
      InvalidArgument);
}

class TileLuTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllSchedulers, TileLuTest,
                         ::testing::Values("quark", "starpu/dmda", "ompss/bf"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

TEST_P(TileLuTest, FactorsCorrectly) {
  Rng rng(4);
  const int n = 96, nb = 24;
  const linalg::Matrix original = linalg::Matrix::random_diag_dominant(n, rng);
  linalg::TileMatrix a = linalg::TileMatrix::from_dense(original, nb);
  sched::RuntimeConfig config;
  config.workers = 3;
  auto rt = sched::make_runtime(GetParam(), config);
  sched::RealSubmitter submitter(*rt);
  EXPECT_EQ(linalg::tile_lu_nopiv(a, submitter), 0);
  EXPECT_LT(linalg::lu_residual(original, a), 1e-12);
}

TEST(TileLu, TaskCountFormula) {
  EXPECT_EQ(linalg::lu_task_count(1), 1u);
  EXPECT_EQ(linalg::lu_task_count(2), 5u);   // getrf, 2 trsm, gemm, getrf
  EXPECT_EQ(linalg::lu_task_count(3), 14u);
}

TEST(TileLu, HarnessPipelineSupportsLu) {
  harness::ExperimentConfig config;
  config.algorithm = harness::parse_algorithm("lu");
  config.scheduler = "quark";
  config.n = 96;
  config.nb = 24;
  config.workers = 2;
  config.verify_numerics = true;
  const harness::RunResult real = harness::run_real(config);
  EXPECT_EQ(real.tasks, linalg::lu_task_count(4));
  ASSERT_TRUE(real.residual.has_value());
  EXPECT_LT(*real.residual, 1e-12);

  const auto row = harness::compare_real_vs_sim(config,
                                                sim::ModelFamily::best);
  EXPECT_GT(row.sim_gflops, 0.0);
}

// ----------------------------------------------------------- chrome json

TEST(ChromeExport, ContainsEventsAndMetadata) {
  trace::Trace t("real");
  t.record(7, "dgemm", 0, 0.0, 100.0);
  t.record(8, "dtrsm", 1, 50.0, 80.0);
  const std::string json = trace::render_chrome_json(t);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dgemm\""), std::string::npos);
  EXPECT_NE(json.find("\"task_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"real\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":100"), std::string::npos);
}

TEST(ChromeExport, MultipleTracesGetDistinctPids) {
  trace::Trace a("real"), b("sim");
  a.record(0, "k", 0, 0.0, 1.0);
  b.record(0, "k", 0, 0.0, 1.0);
  const std::string json = trace::render_chrome_json({&a, &b});
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
}

TEST(ChromeExport, EscapesSpecialCharacters) {
  trace::Trace t("with \"quotes\"");
  t.record(0, "k\\1", 0, 0.0, 1.0);
  const std::string json = trace::render_chrome_json(t);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("k\\\\1"), std::string::npos);
}

TEST(ChromeExport, EscapeJsonHandlesAdversarialNames) {
  EXPECT_EQ(trace::escape_json("plain_kernel-1"), "plain_kernel-1");
  EXPECT_EQ(trace::escape_json("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(trace::escape_json("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
  // Control characters without short escapes become \uXXXX, including NUL.
  EXPECT_EQ(trace::escape_json(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  std::string embedded_nul = "k";
  embedded_nul.push_back('\0');
  embedded_nul += "x";
  EXPECT_EQ(trace::escape_json(embedded_nul), "k\\u0000x");
  // Non-control bytes (incl. UTF-8 continuation bytes) pass through.
  EXPECT_EQ(trace::escape_json("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(ChromeExport, RenderedJsonContainsNoRawControlCharacters) {
  trace::Trace t("evil\rlabel");
  t.record(0, "dgemm\x02\"quoted\"", 0, 0.0, 1.0);
  const std::string json = trace::render_chrome_json(t);
  EXPECT_NE(json.find("\\u0002"), std::string::npos);
  EXPECT_NE(json.find("\\r"), std::string::npos);
  for (char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control character in JSON output";
  }
}

TEST(ChromeExport, OccupancyTrackSurfacesMalformedEventSets) {
  // An end-before-start event is unreachable through Trace::record (it
  // validates intervals), but a hand-built or corrupted event set can carry
  // one; the occupancy derivation must surface the inconsistency (negative
  // level + warning) instead of clamping it away.
  std::vector<trace::TraceEvent> events;
  trace::TraceEvent bad;
  bad.task_id = 0;
  bad.kernel = "k";
  bad.worker = 0;
  bad.start_us = 10.0;  // "start" after "end": a lone end at t=5
  bad.end_us = 5.0;
  events.push_back(bad);
  const trace::CounterTrack track = trace::occupancy_track(events, "depth");
  ASSERT_EQ(track.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(track.samples[0].ts_us, 5.0);
  EXPECT_DOUBLE_EQ(track.samples[0].value, -1.0);  // not clamped to 0
  EXPECT_DOUBLE_EQ(track.samples[1].ts_us, 10.0);
  EXPECT_DOUBLE_EQ(track.samples[1].value, 0.0);
}

TEST(ChromeExport, ExtraEventsAppendToTheEventArray) {
  trace::Trace t("sim");
  t.record(0, "k", 0, 0.0, 10.0);
  const std::string json = trace::render_chrome_json(
      {&t}, {},
      {"{\"name\":\"span\",\"ph\":\"b\",\"cat\":\"lifecycle\",\"id\":0,"
       "\"pid\":1,\"tid\":0,\"ts\":0}",
       "{\"name\":\"span\",\"ph\":\"e\",\"cat\":\"lifecycle\",\"id\":0,"
       "\"pid\":1,\"tid\":0,\"ts\":10}"});
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ChromeExport, OccupancyTrackFoldsStartsAndEnds) {
  trace::Trace t;
  t.record(0, "k", 0, 0.0, 100.0);
  t.record(1, "k", 1, 50.0, 150.0);  // overlaps the first
  const trace::CounterTrack track = trace::occupancy_track(t, "depth", 3);
  EXPECT_EQ(track.name, "depth");
  EXPECT_EQ(track.pid, 3);
  // Timestamps 0, 50, 100, 150 with occupancy 1, 2, 1, 0.
  ASSERT_EQ(track.samples.size(), 4u);
  EXPECT_DOUBLE_EQ(track.samples[0].ts_us, 0.0);
  EXPECT_DOUBLE_EQ(track.samples[0].value, 1.0);
  EXPECT_DOUBLE_EQ(track.samples[1].ts_us, 50.0);
  EXPECT_DOUBLE_EQ(track.samples[1].value, 2.0);
  EXPECT_DOUBLE_EQ(track.samples[2].ts_us, 100.0);
  EXPECT_DOUBLE_EQ(track.samples[2].value, 1.0);
  EXPECT_DOUBLE_EQ(track.samples[3].ts_us, 150.0);
  EXPECT_DOUBLE_EQ(track.samples[3].value, 0.0);
}

TEST(ChromeExport, CounterTracksRenderAsCounterEvents) {
  trace::Trace t("sim");
  t.record(0, "k", 0, 0.0, 10.0);
  trace::CounterTrack track;
  track.name = "queue depth";
  track.pid = 1;
  track.samples = {{0.0, 1.0}, {10.0, 0.0}};
  const std::string json = trace::render_chrome_json({&t}, {track});
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue depth\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":1"), std::string::npos);
  // The task bars are still there.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ChromeExport, NoCounterEventsWithoutTracks) {
  trace::Trace t("sim");
  t.record(0, "k", 0, 0.0, 10.0);
  const std::string json = trace::render_chrome_json(t);
  EXPECT_EQ(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(ChromeExport, WritesFile) {
  trace::Trace t("x");
  t.record(0, "k", 0, 0.0, 1.0);
  const std::string path = ::testing::TempDir() + "/tasksim_chrome_test.json";
  trace::write_chrome_json(t, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
  EXPECT_THROW(trace::write_chrome_json(t, "/no/such/dir/x.json"), IoError);
}

// ------------------------------------------------------------ ready pools

TEST(CentralQueue, FifoAndLifoOrder) {
  sched::TaskRecord a, b, c;
  sched::CentralQueue fifo(sched::QueueDiscipline::fifo);
  fifo.push(&a);
  fifo.push(&b);
  fifo.push(&c);
  EXPECT_EQ(fifo.pop(), &a);
  EXPECT_EQ(fifo.pop(), &b);
  EXPECT_EQ(fifo.pop(), &c);
  EXPECT_EQ(fifo.pop(), nullptr);

  sched::CentralQueue lifo(sched::QueueDiscipline::lifo);
  lifo.push(&a);
  lifo.push(&b);
  EXPECT_EQ(lifo.pop(), &b);
  EXPECT_EQ(lifo.pop(), &a);
}

TEST(CentralQueue, PriorityOrderStableWithinLevel) {
  sched::TaskRecord lo1, lo2, hi;
  lo1.desc.priority = 0;
  lo2.desc.priority = 0;
  hi.desc.priority = 5;
  sched::CentralQueue q(sched::QueueDiscipline::priority);
  q.push(&lo1);
  q.push(&hi);
  q.push(&lo2);
  EXPECT_EQ(q.pop(), &hi);
  EXPECT_EQ(q.pop(), &lo1);
  EXPECT_EQ(q.pop(), &lo2);
}

TEST(StealingDeques, OwnerFrontThiefBack) {
  sched::StealingDeques deques(2, 1);
  sched::TaskRecord a, b, c;
  deques.push(0, &a);
  deques.push(0, &b);
  deques.push(0, &c);
  EXPECT_EQ(deques.size(), 3u);
  EXPECT_EQ(deques.size_of(0), 3u);
  EXPECT_EQ(deques.steal(1), &c);    // thief takes the back
  EXPECT_EQ(deques.pop_own(0), &a);  // owner takes the front
  EXPECT_EQ(deques.size(), 1u);
}

TEST(StealingDeques, PriorityTasksJumpTheirLane) {
  sched::StealingDeques deques(2, 1);
  sched::TaskRecord normal, urgent;
  urgent.desc.priority = 3;
  deques.push(0, &normal);
  deques.push(0, &urgent);
  EXPECT_EQ(deques.pop_own(0), &urgent);
}

TEST(StealingDeques, StealSkipsOwnLane) {
  sched::StealingDeques deques(2, 1);
  sched::TaskRecord a;
  deques.push(0, &a);
  EXPECT_EQ(deques.steal(0), nullptr);  // only victim is itself
  EXPECT_EQ(deques.steal(1), &a);
}

TEST(StealingDeques, BoundsChecked) {
  sched::StealingDeques deques(2, 1);
  sched::TaskRecord a;
  EXPECT_THROW(deques.push(5, &a), InvalidArgument);
  EXPECT_THROW(deques.pop_own(-1), InvalidArgument);
}

// -------------------------------------------------------------- perfmodel

TEST(PerfModel, PriorThenHistory) {
  sched::PerfModel model(250.0);
  EXPECT_DOUBLE_EQ(model.expected_us("dgemm"), 250.0);  // prior
  model.update("dgemm", 100.0);
  model.update("dgemm", 200.0);
  EXPECT_DOUBLE_EQ(model.expected_us("dgemm"), 150.0);
  EXPECT_EQ(model.sample_count("dgemm"), 2u);
  EXPECT_EQ(model.sample_count("other"), 0u);
}

TEST(PerfModel, SnapshotAndClear) {
  sched::PerfModel model;
  model.update("a", 1.0);
  model.update("b", 2.0);
  const auto snapshot = model.snapshot();
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_DOUBLE_EQ(snapshot.at("b").mean(), 2.0);
  model.clear();
  EXPECT_EQ(model.sample_count("a"), 0u);
}

}  // namespace
}  // namespace tasksim
