// Tests for the trace library: recording, serialization, SVG, analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "trace/analysis.hpp"
#include "trace/color.hpp"
#include "trace/svg_export.hpp"
#include "trace/text_io.hpp"
#include "trace/trace.hpp"

namespace tasksim::trace {
namespace {

Trace sample_trace() {
  Trace t("sample");
  t.record(0, "dgemm", 0, 0.0, 100.0);
  t.record(1, "dtrsm", 1, 10.0, 60.0);
  t.record(2, "dgemm", 0, 100.0, 250.0);
  t.record(3, "dpotrf", 1, 60.0, 200.0);
  return t;
}

TEST(Trace, RecordsAndCounts) {
  const Trace t = sample_trace();
  EXPECT_EQ(t.size(), 4u);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.worker_count(), 2);
  EXPECT_DOUBLE_EQ(t.makespan_us(), 250.0);
  EXPECT_DOUBLE_EQ(*t.start_us(), 0.0);
}

TEST(Trace, SortedEventsOrderedByStart) {
  const Trace t = sample_trace();
  const auto events = t.sorted_events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_us, events[i].start_us);
  }
}

TEST(Trace, EmptyTraceBehaviour) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.worker_count(), 0);
  EXPECT_DOUBLE_EQ(t.makespan_us(), 0.0);
  EXPECT_FALSE(t.start_us().has_value());
}

TEST(Trace, RejectsInvalidEvents) {
  Trace t;
  EXPECT_THROW(t.record(0, "k", 0, 10.0, 5.0), InvalidArgument);
  EXPECT_THROW(t.record(0, "k", -1, 0.0, 5.0), InvalidArgument);
}

TEST(Trace, ConcurrentRecordingIsSafe) {
  Trace t;
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&t, w] {
      for (int i = 0; i < 500; ++i) {
        t.record(static_cast<std::uint64_t>(w * 1000 + i), "k", w,
                 static_cast<double>(i), static_cast<double>(i + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.size(), 2000u);
  EXPECT_EQ(t.worker_count(), 4);
}

TEST(Trace, CopyAndMoveSemantics) {
  Trace t = sample_trace();
  Trace copy(t);
  EXPECT_EQ(copy.size(), 4u);
  EXPECT_EQ(copy.label(), "sample");
  Trace moved(std::move(copy));
  EXPECT_EQ(moved.size(), 4u);
  t = moved;  // copy assign
  EXPECT_EQ(t.size(), 4u);
}

// ---------------------------------------------------------------- text io

TEST(TextIo, RoundTripsThroughStream) {
  const Trace t = sample_trace();
  std::stringstream ss;
  save_trace(t, ss);
  const Trace loaded = load_trace(ss);
  EXPECT_EQ(loaded.label(), "sample");
  ASSERT_EQ(loaded.size(), t.size());
  const auto a = t.sorted_events();
  const auto b = loaded.sorted_events();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].task_id, b[i].task_id);
    EXPECT_EQ(a[i].kernel, b[i].kernel);
    EXPECT_EQ(a[i].worker, b[i].worker);
    EXPECT_DOUBLE_EQ(a[i].start_us, b[i].start_us);
    EXPECT_DOUBLE_EQ(a[i].end_us, b[i].end_us);
  }
}

TEST(TextIo, RejectsBadHeader) {
  std::stringstream ss("not a trace\n");
  EXPECT_THROW(load_trace(ss), InvalidArgument);
}

TEST(TextIo, RejectsMalformedLine) {
  std::stringstream ss("# tasksim-trace v1 label=x\n1 2 3\n");
  EXPECT_THROW(load_trace(ss), InvalidArgument);
}

TEST(TextIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# tasksim-trace v1 label=x\n\n# comment\n1 0 0.0 5.0 dgemm\n");
  const Trace t = load_trace(ss);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TextIo, SaveDoesNotMutateStreamPrecision) {
  // Regression: save_trace used to set precision(17) *after* writing the
  // header and never restore it, so the caller's stream kept emitting
  // 17-digit doubles forever after.
  std::stringstream ss;
  ss.precision(3);
  save_trace(sample_trace(), ss);
  EXPECT_EQ(ss.precision(), 3);
  ss << 0.123456789;
  std::string tail;
  std::string last;
  while (ss >> tail) last = tail;
  EXPECT_EQ(last, "0.123");
}

TEST(TextIo, SaveSetsPrecisionBeforeAnyOutput) {
  // Full-precision times must apply to the first data line too, not only
  // to lines after the header flushed at default precision.
  Trace t;
  const double start = 1234567.123456789;  // > 15 significant digits
  t.record(0, "k", 0, start, start + 1.0);
  std::stringstream ss;
  save_trace(t, ss);
  const Trace loaded = load_trace(ss);
  EXPECT_EQ(loaded.events()[0].start_us, start);  // bit-exact
}

TEST(TextIo, RoundTripIsBitExact) {
  // save -> load -> save: the 17-digit text format must round-trip any
  // double bit-for-bit, so the second save equals the first.
  Trace t;
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const double start = rng.uniform(0.0, 1e7);
    t.record(static_cast<std::uint64_t>(i), "dgemm", i % 4, start,
             start + rng.uniform(0.0, 1e3));
  }
  std::stringstream first;
  save_trace(t, first);
  const std::string first_text = first.str();
  std::stringstream second;
  save_trace(load_trace(first), second);
  EXPECT_EQ(first_text, second.str());
  const Trace reloaded = load_trace(second);
  const auto a = t.sorted_events();
  const auto b = reloaded.sorted_events();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_us, b[i].start_us);  // exact, not NEAR
    EXPECT_EQ(a[i].end_us, b[i].end_us);
  }
}

TEST(TextIo, RejectsNonFiniteTimes) {
  // Regression: ±inf survived Trace::record's end >= start check, so a
  // corrupt file silently imported events with infinite times.
  std::stringstream inf_end(
      "# tasksim-trace v1 label=x\n1 0 0.0 inf dgemm\n");
  EXPECT_THROW(load_trace(inf_end), InvalidArgument);
  std::stringstream inf_both(
      "# tasksim-trace v1 label=x\n1 0 -inf inf dgemm\n");
  EXPECT_THROW(load_trace(inf_both), InvalidArgument);
  std::stringstream nan_start(
      "# tasksim-trace v1 label=x\n1 0 nan 5.0 dgemm\n");
  EXPECT_THROW(load_trace(nan_start), InvalidArgument);
}

TEST(TextIo, RejectsReversedInterval) {
  std::stringstream ss("# tasksim-trace v1 label=x\n1 0 10.0 5.0 dgemm\n");
  EXPECT_THROW(load_trace(ss), InvalidArgument);
}

TEST(TextIo, FileRoundTrip) {
  const Trace t = sample_trace();
  const std::string path = ::testing::TempDir() + "/tasksim_trace_test.txt";
  save_trace(t, path);
  const Trace loaded = load_trace(path);
  EXPECT_EQ(loaded.size(), t.size());
  std::remove(path.c_str());
  EXPECT_THROW(load_trace("/nonexistent/path/x.trace"), IoError);
}

// -------------------------------------------------------------------- svg

TEST(Svg, ContainsRectsPerEventAndKernelColors) {
  const Trace t = sample_trace();
  const std::string svg = render_svg(t);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per event plus lane backgrounds and legend swatches.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, t.size());
  EXPECT_NE(svg.find(kernel_color("dgemm")), std::string::npos);
}

TEST(Svg, SharedTimeAxisScalesConsistently) {
  const Trace t = sample_trace();
  SvgOptions narrow;
  narrow.time_span_us = 250.0;
  SvgOptions wide;
  wide.time_span_us = 500.0;  // same trace drawn on a longer axis
  const std::string a = render_svg(t, narrow);
  const std::string b = render_svg(t, wide);
  EXPECT_NE(a, b);
}

TEST(Svg, TitleAndXmlEscaping) {
  Trace t;
  t.record(0, "k<&>", 0, 0.0, 1.0);
  SvgOptions options;
  options.title = "a<b>&c";
  const std::string svg = render_svg(t, options);
  EXPECT_EQ(svg.find("a<b>"), std::string::npos);
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;c"), std::string::npos);
}

TEST(Svg, KernelColorsStableAndDistinctForPlasmaKernels) {
  EXPECT_EQ(kernel_color("dgemm"), kernel_color("DGEMM"));
  EXPECT_NE(kernel_color("dgemm"), kernel_color("dsyrk"));
  EXPECT_NE(kernel_color("dtsqrt"), kernel_color("dtsmqr"));
  EXPECT_EQ(kernel_color("custom_kernel"), kernel_color("custom_kernel"));
}

// --------------------------------------------------------------- analysis

TEST(Analysis, StatsAggregateCorrectly) {
  const TraceStats s = analyze(sample_trace());
  EXPECT_EQ(s.task_count, 4u);
  EXPECT_EQ(s.worker_count, 2);
  EXPECT_DOUBLE_EQ(s.makespan_us, 250.0);
  EXPECT_DOUBLE_EQ(s.total_busy_us, 100.0 + 50.0 + 150.0 + 140.0);
  ASSERT_EQ(s.kernels.count("dgemm"), 1u);
  EXPECT_EQ(s.kernels.at("dgemm").count, 2u);
  EXPECT_DOUBLE_EQ(s.kernels.at("dgemm").total_time_us, 250.0);
  EXPECT_NEAR(s.mean_utilization, 440.0 / (250.0 * 2), 1e-12);
}

TEST(Analysis, CompareIdenticalTracesIsPerfect) {
  const Trace t = sample_trace();
  const TraceComparison c = compare_traces(t, t);
  EXPECT_DOUBLE_EQ(c.makespan_error_pct, 0.0);
  EXPECT_DOUBLE_EQ(c.start_order_tau, 1.0);
  EXPECT_EQ(c.matched_tasks, 4u);
  for (const auto& [kernel, delta] : c.kernels) {
    EXPECT_DOUBLE_EQ(delta.mean_error_pct, 0.0);
  }
}

TEST(Analysis, CompareDetectsMakespanError) {
  const Trace real = sample_trace();
  Trace sim("sim");
  for (const auto& e : real.events()) {
    sim.record(e.task_id, e.kernel, e.worker, e.start_us * 1.2,
               e.end_us * 1.2);
  }
  const TraceComparison c = compare_traces(real, sim);
  EXPECT_NEAR(c.makespan_error_pct, 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(c.start_order_tau, 1.0);  // order preserved
}

TEST(Analysis, CompareDetectsReversedOrder) {
  const Trace real = sample_trace();
  Trace sim("sim");
  const auto events = real.sorted_events();
  double t0 = 0.0;
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    sim.record(it->task_id, it->kernel, it->worker, t0, t0 + 1.0);
    t0 += 1.0;
  }
  const TraceComparison c = compare_traces(real, sim);
  EXPECT_LT(c.start_order_tau, 0.0);
}

TEST(Analysis, UtilizationProfileFullWhenPacked) {
  Trace t;
  t.record(0, "k", 0, 0.0, 100.0);
  t.record(1, "k", 1, 0.0, 100.0);
  const auto profile = utilization_profile(t, 4);
  ASSERT_EQ(profile.size(), 4u);
  for (double u : profile) EXPECT_NEAR(u, 1.0, 1e-9);
}

TEST(Analysis, EmptyTraceYieldsZeroedStatsNotNan) {
  const TraceStats s = analyze(Trace{});
  EXPECT_EQ(s.task_count, 0u);
  EXPECT_EQ(s.worker_count, 0);
  EXPECT_DOUBLE_EQ(s.makespan_us, 0.0);
  EXPECT_DOUBLE_EQ(s.total_busy_us, 0.0);
  // The utilization divides by makespan * workers: with both zero the
  // result must be a clean 0, never NaN.
  EXPECT_DOUBLE_EQ(s.mean_utilization, 0.0);
  EXPECT_TRUE(std::isfinite(s.mean_utilization));
}

TEST(Analysis, ZeroMakespanTraceYieldsFiniteStats) {
  // All events are instantaneous at the same moment: makespan is 0 but the
  // trace is non-empty, so the division guard (not the empty-trace early
  // path) is what keeps utilization finite.
  Trace t;
  t.record(0, "k", 0, 10.0, 10.0);
  t.record(1, "k", 1, 10.0, 10.0);
  const TraceStats s = analyze(t);
  EXPECT_EQ(s.task_count, 2u);
  EXPECT_DOUBLE_EQ(s.makespan_us, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_utilization, 0.0);
  EXPECT_TRUE(std::isfinite(s.mean_utilization));
}

TEST(Analysis, CompareZeroMakespanTracesIsFinite) {
  Trace t;
  t.record(0, "k", 0, 5.0, 5.0);
  const TraceComparison c = compare_traces(t, t);
  EXPECT_TRUE(std::isfinite(c.makespan_error_pct));
  EXPECT_DOUBLE_EQ(c.makespan_error_pct, 0.0);
  for (const auto& [kernel, delta] : c.kernels) {
    EXPECT_TRUE(std::isfinite(delta.mean_error_pct)) << kernel;
  }
}

TEST(Analysis, UtilizationProfileOfDegenerateTracesIsAllZero) {
  const auto empty = utilization_profile(Trace{}, 5);
  ASSERT_EQ(empty.size(), 5u);
  for (double u : empty) EXPECT_DOUBLE_EQ(u, 0.0);

  Trace flat;  // non-empty but zero span: bucket width would be 0
  flat.record(0, "k", 0, 3.0, 3.0);
  const auto profile = utilization_profile(flat, 3);
  ASSERT_EQ(profile.size(), 3u);
  for (double u : profile) {
    EXPECT_TRUE(std::isfinite(u));
    EXPECT_DOUBLE_EQ(u, 0.0);
  }
}

TEST(Analysis, UtilizationProfileDetectsIdleTail) {
  Trace t;
  t.record(0, "k", 0, 0.0, 50.0);
  t.record(1, "k", 1, 0.0, 100.0);
  const auto profile = utilization_profile(t, 2);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_NEAR(profile[0], 1.0, 1e-9);
  EXPECT_NEAR(profile[1], 0.5, 1e-9);
}

}  // namespace
}  // namespace tasksim::trace
