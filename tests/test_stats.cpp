// Tests for src/stats: special functions, descriptive statistics,
// histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/special.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace tasksim::stats {
namespace {

// ---------------------------------------------------------------- special

TEST(Special, DigammaReferenceValues) {
  // psi(1) = -gamma (Euler-Mascheroni), psi(2) = 1 - gamma, psi(0.5) =
  // -gamma - 2 ln 2.
  const double euler = 0.5772156649015329;
  EXPECT_NEAR(digamma(1.0), -euler, 1e-10);
  EXPECT_NEAR(digamma(2.0), 1.0 - euler, 1e-10);
  EXPECT_NEAR(digamma(0.5), -euler - 2.0 * std::log(2.0), 1e-10);
  EXPECT_NEAR(digamma(10.0), 2.2517525890667212, 1e-10);
}

TEST(Special, DigammaRecurrence) {
  // psi(x+1) = psi(x) + 1/x.
  for (double x : {0.3, 1.7, 4.2, 9.9}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
  }
}

TEST(Special, TrigammaReferenceValues) {
  EXPECT_NEAR(trigamma(1.0), M_PI * M_PI / 6.0, 1e-10);
  // psi'(x+1) = psi'(x) - 1/x^2.
  for (double x : {0.4, 2.5, 7.0}) {
    EXPECT_NEAR(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-10);
  }
}

TEST(Special, RegularizedGammaEdgeCases) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  // P(a, x) -> 1 as x -> inf.
  EXPECT_NEAR(regularized_gamma_p(3.0, 100.0), 1.0, 1e-12);
  EXPECT_THROW(regularized_gamma_p(-1.0, 1.0), InvalidArgument);
}

TEST(Special, RegularizedGammaKnownValues) {
  // P(0.5, x) = erf(sqrt(x)).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(Special, NormalCdfSymmetry) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  for (double z : {0.5, 1.0, 1.96, 3.0}) {
    EXPECT_NEAR(normal_cdf(z) + normal_cdf(-z), 1.0, 1e-12);
  }
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
}

TEST(Special, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.8, 0.99, 0.9999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
  EXPECT_THROW(normal_quantile(0.0), InvalidArgument);
  EXPECT_THROW(normal_quantile(1.0), InvalidArgument);
}

// ------------------------------------------------------------ descriptive

TEST(Descriptive, SummaryOfKnownSample) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.variance, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
}

TEST(Descriptive, SummarizeRejectsEmpty) {
  EXPECT_THROW(summarize({}), InvalidArgument);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Descriptive, RunningStatsMatchesBatch) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStats acc;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    xs.push_back(x);
    acc.add(x);
  }
  const Summary s = summarize(xs);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-9);
  EXPECT_NEAR(acc.variance(), s.variance, 1e-6);
  EXPECT_DOUBLE_EQ(acc.min(), s.min);
  EXPECT_DOUBLE_EQ(acc.max(), s.max);
  EXPECT_EQ(acc.count(), s.count);
}

TEST(Descriptive, RunningStatsMergeEquivalentToCombined) {
  Rng rng(6);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Descriptive, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs is a no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty lhs copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Descriptive, PearsonCorrelationKnownCases) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y_pos = {2, 4, 6, 8};
  const std::vector<double> y_neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(x, y_neg), -1.0, 1e-12);
}

TEST(Descriptive, KendallTauKnownCases) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> same = {10, 20, 30, 40, 50};
  const std::vector<double> reversed = {50, 40, 30, 20, 10};
  EXPECT_DOUBLE_EQ(kendall_tau(x, same), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau(x, reversed), -1.0);
  const std::vector<double> one_swap = {2, 1, 3, 4, 5};
  const double tau = kendall_tau(x, one_swap);
  EXPECT_GT(tau, 0.7);
  EXPECT_LT(tau, 1.0);
}

// -------------------------------------------------------------- histogram

TEST(Histogram, CountsAndDensityIntegrateToOne) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  double integral = 0.0;
  for (int b = 0; b < h.bin_count(); ++b) {
    integral += h.density(b) * h.bin_width();
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, FromDataCoversSample) {
  Rng rng(77);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(50.0, 5.0));
  Histogram h = Histogram::from_data(xs);
  EXPECT_EQ(h.total(), xs.size());
  EXPECT_GE(h.bin_count(), 4);
  EXPECT_LE(h.bin_count(), 60);
}

TEST(Histogram, AsciiPlotRenders) {
  Histogram h(0.0, 1.0, 8);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) h.add(rng.uniform());
  const std::string plot = h.ascii_plot(6);
  EXPECT_NE(plot.find('#'), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
  EXPECT_THROW(Histogram::from_data({}), InvalidArgument);
}

}  // namespace
}  // namespace tasksim::stats
