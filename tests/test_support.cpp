// Tests for src/support: errors, RNG, strings, CLI, timing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"
#include "support/timing.hpp"

namespace tasksim {
namespace {

// ----------------------------------------------------------------- errors

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(TS_REQUIRE(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(TS_REQUIRE(true, "fine"));
}

TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW(TS_ASSERT(false, "bug"), InternalError);
  EXPECT_NO_THROW(TS_ASSERT(true, "fine"));
}

TEST(Error, MessagesIncludeContext) {
  try {
    TS_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyRootsAtError) {
  EXPECT_THROW(
      { throw IoError("file gone"); }, Error);
  EXPECT_THROW(
      { throw InternalError("bug"); }, Error);
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2() != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.uniform_index(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 10 * 0.1);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(10);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, GammaMomentsMatch) {
  Rng rng(12);
  const double shape = 3.0, scale = 2.0;
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape, scale);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.1);
  EXPECT_NEAR(var, shape * scale * scale, 0.5);
}

TEST(Rng, GammaSmallShape) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(0.5, 1.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.split();
  // Identical seeds would correlate perfectly; check the streams differ.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

// ---------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  const auto parts = split_whitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("tasksim", "task"));
  EXPECT_FALSE(starts_with("task", "tasksim"));
  EXPECT_TRUE(ends_with("trace.svg", ".svg"));
  EXPECT_FALSE(ends_with(".svg", "trace.svg"));
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(join(parts, ","), "a,b,c");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, FormatDurationPicksUnits) {
  EXPECT_EQ(format_duration_us(12.3456), "12.35 us");
  EXPECT_EQ(format_duration_us(1234.5), "1.23 ms");
  EXPECT_EQ(format_duration_us(2.5e6), "2.500 s");
}

TEST(Strings, FormatWithCommas) {
  EXPECT_EQ(format_with_commas(0), "0");
  EXPECT_EQ(format_with_commas(999), "999");
  EXPECT_EQ(format_with_commas(1000), "1,000");
  EXPECT_EQ(format_with_commas(1234567), "1,234,567");
  EXPECT_EQ(format_with_commas(-1234567), "-1,234,567");
}

TEST(Strings, ParseIntValidAndInvalid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_THROW(parse_int("4x"), InvalidArgument);
  EXPECT_THROW(parse_int(""), InvalidArgument);
  EXPECT_THROW(parse_int("1.5"), InvalidArgument);
}

TEST(Strings, ParseDoubleValidAndInvalid) {
  EXPECT_DOUBLE_EQ(parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-2e3"), -2000.0);
  EXPECT_THROW(parse_double("abc"), InvalidArgument);
}

TEST(Strings, ParseBool) {
  EXPECT_TRUE(parse_bool("true"));
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_TRUE(parse_bool("ON"));
  EXPECT_FALSE(parse_bool("false"));
  EXPECT_FALSE(parse_bool("no"));
  EXPECT_THROW(parse_bool("maybe"), InvalidArgument);
}

// -------------------------------------------------------------------- cli

TEST(Cli, ParsesAllOptionTypes) {
  int count = 1;
  double ratio = 0.5;
  std::string name = "default";
  bool flag = false;
  std::vector<int> sizes = {1, 2};
  CliParser cli("prog", "test");
  cli.add_int("count", &count, "a count");
  cli.add_double("ratio", &ratio, "a ratio");
  cli.add_string("name", &name, "a name");
  cli.add_flag("flag", &flag, "a flag");
  cli.add_int_list("sizes", &sizes, "sizes");

  const char* argv[] = {"prog", "--count", "7",      "--ratio=2.5",
                        "--name", "x",     "--flag", "--sizes", "3,4,5"};
  EXPECT_TRUE(cli.parse(9, const_cast<char**>(argv)));
  EXPECT_EQ(count, 7);
  EXPECT_DOUBLE_EQ(ratio, 2.5);
  EXPECT_EQ(name, "x");
  EXPECT_TRUE(flag);
  EXPECT_EQ(sizes, (std::vector<int>{3, 4, 5}));
}

TEST(Cli, RejectsUnknownOption) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, const_cast<char**>(argv)), InvalidArgument);
}

TEST(Cli, RejectsMissingValue) {
  int count = 0;
  CliParser cli("prog", "test");
  cli.add_int("count", &count, "a count");
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW(cli.parse(2, const_cast<char**>(argv)), InvalidArgument);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, const_cast<char**>(argv)));
}

TEST(Cli, FlagAcceptsExplicitValue) {
  bool flag = true;
  CliParser cli("prog", "test");
  cli.add_flag("flag", &flag, "a flag");
  const char* argv[] = {"prog", "--flag=false"};
  EXPECT_TRUE(cli.parse(2, const_cast<char**>(argv)));
  EXPECT_FALSE(flag);
}

TEST(Cli, UsageMentionsOptionsAndDefaults) {
  int count = 11;
  CliParser cli("prog", "does things");
  cli.add_int("count", &count, "how many");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
  EXPECT_NE(usage.find("11"), std::string::npos);
}

// ----------------------------------------------------------------- timing

TEST(Timing, WallClockMonotonic) {
  const double a = wall_time_us();
  const double b = wall_time_us();
  EXPECT_GE(b, a);
}

TEST(Timing, ThreadCpuTimeExcludesSleep) {
  const double cpu0 = thread_cpu_time_us();
  const double wall0 = wall_time_us();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double cpu_delta = thread_cpu_time_us() - cpu0;
  const double wall_delta = wall_time_us() - wall0;
  EXPECT_GE(wall_delta, 15000.0);
  EXPECT_LT(cpu_delta, wall_delta / 2.0);
}

TEST(Timing, StopwatchMeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(sw.elapsed_us(), 4000.0);
  EXPECT_NEAR(sw.elapsed_seconds(), sw.elapsed_us() * 1e-6, 1e-3);
  sw.reset();
  EXPECT_LT(sw.elapsed_us(), 4000.0);
}

// -------------------------------------------------------------------- log

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::debug);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::warn);
  EXPECT_THROW(parse_log_level("loud"), InvalidArgument);
  EXPECT_STREQ(to_string(LogLevel::info), "INFO");
}

TEST(Log, MacroIsDanglingElseSafe) {
  // TS_LOG expands to an if statement; used un-braced inside if/else it
  // must not capture the caller's `else`.  A naive `if (level) LogLine`
  // expansion makes the else below bind to the macro's internal if: this
  // branch would then never run and the log line would fire from the wrong
  // branch.  This is a compile+behaviour regression test for that shape.
  bool else_ran = false;
  if (false)
    TS_LOG_ERROR << "must not be reachable from the false branch";
  else
    else_ran = true;
  EXPECT_TRUE(else_ran);

  bool then_ran = false;
  if (true)
    then_ran = true;
  else
    TS_LOG_ERROR << "must not be reachable from the true branch";
  EXPECT_TRUE(then_ran);

  // Streaming still works when the level check passes (no output capture
  // assertion; this just exercises the enabled path of the new expansion).
  const LogLevel saved = Logger::instance().level();
  Logger::instance().set_level(LogLevel::off);
  TS_LOG_WARN << "suppressed at level off";
  Logger::instance().set_level(saved);
}

// ---------------------------------------------------------------- sysinfo

TEST(Sysinfo, SaneValues) {
  EXPECT_GE(hardware_threads(), 1);
  EXPECT_GE(default_worker_count(), 1);
  EXPECT_LE(default_worker_count(4), 4);
  EXPECT_NE(host_summary().find("thread"), std::string::npos);
}

}  // namespace
}  // namespace tasksim
