// Tests for the paper-§VII extensions TaskSim implements: start-up penalty
// modeling and heterogeneous (accelerator-lane) scheduling/simulation.
#include <gtest/gtest.h>

#include <memory>

#include "linalg/tile_cholesky.hpp"
#include "linalg/verify.hpp"
#include "sched/factory.hpp"
#include "sched/starpu/starpu_runtime.hpp"
#include "sched/submitter.hpp"
#include "sim/calibration.hpp"
#include "sim/sim_engine.hpp"
#include "sim/sim_submitter.hpp"
#include "stats/distribution.hpp"
#include "support/error.hpp"

namespace tasksim {
namespace {

// ------------------------------------------------------- startup penalty

TEST(StartupModel, CalibrationSeparatesWarmupSamples) {
  sim::CalibrationObserver calib;  // drop 1 per (worker, kernel)
  calib.on_finish(0, "k", 0, 0.0, 0.0, 0.0, 500.0);  // warm-up, worker 0
  calib.on_finish(1, "k", 0, 0.0, 0.0, 0.0, 100.0);
  calib.on_finish(2, "k", 1, 0.0, 0.0, 0.0, 480.0);  // warm-up, worker 1
  calib.on_finish(3, "k", 1, 0.0, 0.0, 0.0, 105.0);
  const auto warmups = calib.warmup_samples();
  ASSERT_EQ(warmups.at("k").size(), 2u);
  const sim::KernelModelSet startup = calib.fit_startup(sim::ModelFamily::best);
  ASSERT_TRUE(startup.has_model("k"));
  EXPECT_NEAR(startup.mean_us("k"), 490.0, 15.0);
}

TEST(StartupModel, FitStartupHandlesSingleSample) {
  sim::CalibrationObserver calib;
  calib.on_finish(0, "rare", 0, 0.0, 0.0, 0.0, 777.0);
  const sim::KernelModelSet startup =
      calib.fit_startup(sim::ModelFamily::best);
  ASSERT_TRUE(startup.has_model("rare"));
  EXPECT_DOUBLE_EQ(startup.mean_us("rare"), 777.0);
}

TEST(StartupModel, FirstInvocationPerWorkerUsesStartupModel) {
  sim::KernelModelSet models;
  models.set_model("k", std::make_unique<stats::ConstantDist>(100.0));
  sim::KernelModelSet startup;
  startup.set_model("k", std::make_unique<stats::ConstantDist>(400.0));

  sched::RuntimeConfig config;
  config.workers = 1;  // one worker: first task 400us, rest 100us
  auto rt = sched::make_runtime("quark", config);
  sim::SimEngineOptions options;
  options.startup_models = &startup;
  sim::SimEngine engine(models, options);
  sim::SimSubmitter submitter(*rt, engine);
  double x;
  for (int i = 0; i < 5; ++i) {
    submitter.submit("k", nullptr, {sched::inout(&x)});
  }
  submitter.finish();
  const auto events = engine.trace().sorted_events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_DOUBLE_EQ(events[0].duration_us(), 400.0);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].duration_us(), 100.0);
  }
  EXPECT_DOUBLE_EQ(engine.trace().makespan_us(), 800.0);
}

TEST(StartupModel, PenaltyAppliesPerWorker) {
  sim::KernelModelSet models;
  models.set_model("k", std::make_unique<stats::ConstantDist>(100.0));
  sim::KernelModelSet startup;
  startup.set_model("k", std::make_unique<stats::ConstantDist>(300.0));

  sched::RuntimeConfig config;
  config.workers = 3;
  auto rt = sched::make_runtime("quark", config);
  sim::SimEngineOptions options;
  options.startup_models = &startup;
  sim::SimEngine engine(models, options);
  sim::SimSubmitter submitter(*rt, engine);
  double slots[12];
  for (int i = 0; i < 12; ++i) {
    submitter.submit("k", nullptr, {sched::inout(&slots[i])});
  }
  submitter.finish();
  // Count 300us events: one per worker that executed anything.
  int startups = 0;
  std::set<int> workers_used;
  for (const auto& e : engine.trace().events()) {
    if (e.duration_us() == 300.0) ++startups;
    workers_used.insert(e.worker);
  }
  EXPECT_EQ(startups, static_cast<int>(workers_used.size()));
}

TEST(StartupModel, ResetForgetsWarmupState) {
  sim::KernelModelSet models;
  models.set_model("k", std::make_unique<stats::ConstantDist>(100.0));
  sim::KernelModelSet startup;
  startup.set_model("k", std::make_unique<stats::ConstantDist>(400.0));
  sched::RuntimeConfig config;
  config.workers = 1;
  auto rt = sched::make_runtime("quark", config);
  sim::SimEngineOptions options;
  options.startup_models = &startup;
  sim::SimEngine engine(models, options);
  double x;
  for (int round = 0; round < 2; ++round) {
    sim::SimSubmitter submitter(*rt, engine);
    submitter.submit("k", nullptr, {sched::inout(&x)});
    submitter.finish();
    EXPECT_DOUBLE_EQ(engine.trace().sorted_events()[0].duration_us(), 400.0);
    engine.reset();
  }
}

// ---------------------------------------------------------- heterogeneous

sched::StarpuOptions hetero_options(int accel_lanes) {
  sched::StarpuOptions options;
  options.policy = sched::StarpuPolicy::dmda;
  options.accelerator_lanes = accel_lanes;
  return options;
}

TEST(Heterogeneous, LaneClassification) {
  sched::RuntimeConfig config;
  config.workers = 4;
  sched::StarpuRuntime rt(config, hetero_options(2));
  EXPECT_FALSE(rt.lane_is_accelerator(0));
  EXPECT_FALSE(rt.lane_is_accelerator(1));
  EXPECT_TRUE(rt.lane_is_accelerator(2));
  EXPECT_TRUE(rt.lane_is_accelerator(3));
}

TEST(Heterogeneous, RejectsInvalidConfigurations) {
  sched::RuntimeConfig config;
  config.workers = 2;
  EXPECT_THROW(sched::StarpuRuntime(config, hetero_options(2)),
               InvalidArgument);
  sched::StarpuOptions eager = hetero_options(1);
  eager.policy = sched::StarpuPolicy::eager;
  EXPECT_THROW(sched::StarpuRuntime(config, eager), InvalidArgument);
}

TEST(Heterogeneous, CpuOnlyTasksNeverRunOnAcceleratorLanes) {
  sched::RuntimeConfig config;
  config.workers = 3;
  sched::StarpuRuntime rt(config, hetero_options(1));
  std::atomic<bool> violated{false};
  double slots[6];
  for (int i = 0; i < 30; ++i) {
    sched::TaskDescriptor desc;
    desc.kernel = "cpu_only";
    desc.accesses = {sched::inout(&slots[i % 6])};
    desc.function = [&violated, &rt](sched::TaskContext& ctx) {
      if (rt.lane_is_accelerator(ctx.worker)) violated = true;
    };
    rt.submit(std::move(desc));
  }
  rt.wait_all();
  EXPECT_FALSE(violated.load());
}

TEST(Heterogeneous, AccelCapableTasksRunCorrectImplementationPerLane) {
  sched::RuntimeConfig config;
  config.workers = 3;
  sched::StarpuRuntime rt(config, hetero_options(1));
  std::atomic<int> cpu_runs{0}, accel_runs{0};
  std::atomic<bool> mismatched{false};
  double slots[8];
  for (int i = 0; i < 40; ++i) {
    sched::TaskDescriptor desc;
    desc.kernel = "hetero";
    desc.accesses = {sched::inout(&slots[i % 8])};
    desc.function = [&](sched::TaskContext& ctx) {
      ++cpu_runs;
      if (rt.lane_is_accelerator(ctx.worker)) mismatched = true;
    };
    desc.accel_function = [&](sched::TaskContext& ctx) {
      ++accel_runs;
      if (!rt.lane_is_accelerator(ctx.worker)) mismatched = true;
    };
    rt.submit(std::move(desc));
  }
  rt.wait_all();
  EXPECT_FALSE(mismatched.load());
  EXPECT_EQ(cpu_runs.load() + accel_runs.load(), 40);
}

TEST(Heterogeneous, PerfModelKeysSplitByResource) {
  EXPECT_EQ(sched::accel_model_key("dgemm"), "dgemm@accel");
  sched::RuntimeConfig config;
  config.workers = 2;
  sched::StarpuRuntime rt(config, hetero_options(1));
  rt.perf_model().update("dgemm", 100.0);
  rt.perf_model().update(sched::accel_model_key("dgemm"), 10.0);
  EXPECT_DOUBLE_EQ(rt.perf_model().expected_us("dgemm"), 100.0);
  EXPECT_DOUBLE_EQ(rt.perf_model().expected_us("dgemm@accel"), 10.0);
}

TEST(Heterogeneous, SimulationUsesAcceleratorModels) {
  // 1 CPU + 1 accelerator; an accel-capable kernel is 10x faster on the
  // accelerator.  With primed models, dmda should place the work on the
  // accelerator and the virtual makespan reflect the fast model.
  sim::KernelModelSet models;
  models.set_model("k", std::make_unique<stats::ConstantDist>(1000.0));
  models.set_model("k@accel", std::make_unique<stats::ConstantDist>(100.0));

  sched::RuntimeConfig config;
  config.workers = 2;
  auto rt = std::make_unique<sched::StarpuRuntime>(config, hetero_options(1));
  rt->set_profiling(false);
  for (int i = 0; i < 4; ++i) {
    rt->perf_model().update("k", 1000.0);
    rt->perf_model().update("k@accel", 100.0);
  }
  sim::SimEngine engine(models);
  sim::SimSubmitter submitter(*rt, engine);
  double x;
  for (int i = 0; i < 10; ++i) {
    // A serial chain: placement decides which model applies.
    submitter.submit_hetero("k", nullptr, nullptr, {sched::inout(&x)});
  }
  submitter.finish();
  // All tasks should land on the accelerator lane: 10 * 100us.
  EXPECT_DOUBLE_EQ(engine.trace().makespan_us(), 1000.0);
  for (const auto& e : engine.trace().events()) {
    EXPECT_DOUBLE_EQ(e.duration_us(), 100.0);
    EXPECT_TRUE(rt->lane_is_accelerator(e.worker));
  }
}

TEST(Heterogeneous, RealCholeskyWithAcceleratorLanesStaysCorrect) {
  Rng rng(5);
  const int n = 96, nb = 24;
  const linalg::Matrix original = linalg::Matrix::random_spd(n, rng);
  linalg::TileMatrix a = linalg::TileMatrix::from_dense(original, nb);

  sched::RuntimeConfig config;
  config.workers = 3;
  sched::StarpuRuntime rt(config, hetero_options(1));
  // Prime the history so the accelerator is decisively cheaper for the
  // update kernels: dmda must then place them there deterministically.
  for (int i = 0; i < 8; ++i) {
    for (const char* k : {"dgemm", "dsyrk"}) {
      rt.perf_model().update(k, 1000.0);
      rt.perf_model().update(sched::accel_model_key(k), 1.0);
    }
  }
  sched::RealSubmitter submitter(rt);
  linalg::TileAlgoOptions options;
  options.accel_update_kernels = true;
  EXPECT_EQ(linalg::tile_cholesky(a, submitter, options), 0);
  EXPECT_LT(linalg::cholesky_residual(original, a), 1e-13);

  // The accelerator lane must have executed update kernels only.
  EXPECT_GT(rt.perf_model().sample_count("dgemm@accel") +
                rt.perf_model().sample_count("dsyrk@accel"),
            16u);  // beyond the primed samples
  EXPECT_EQ(rt.perf_model().sample_count("dpotrf@accel"), 0u);
  EXPECT_EQ(rt.perf_model().sample_count("dtrsm@accel"), 0u);
}

TEST(Heterogeneous, CodeletCarriesAccelImplementation) {
  sched::RuntimeConfig config;
  config.workers = 2;
  sched::StarpuRuntime rt(config, hetero_options(1));
  std::atomic<int> runs{0};
  sched::Codelet codelet;
  codelet.name = "axpy";
  codelet.cpu_func = [&runs](sched::TaskContext&) { ++runs; };
  codelet.accel_func = [&runs](sched::TaskContext&) { runs += 100; };
  double x;
  for (int i = 0; i < 3; ++i) {
    sched::submit_codelet(rt, codelet, {sched::inout(&x)});
  }
  rt.wait_all();
  // Every task ran exactly once, via one of the two implementations.
  const int total = runs.load();
  EXPECT_EQ(total % 100 + total / 100, 3);
}

}  // namespace
}  // namespace tasksim
