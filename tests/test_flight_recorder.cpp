// Tests for the flight recorder (support/flight_recorder) and the
// lifecycle analyses built on it (trace/lifecycle): recording semantics,
// stream well-formedness over randomized DAGs, the §V-E race auditor, and
// makespan attribution.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "sched/factory.hpp"
#include "sim/sim_engine.hpp"
#include "sim/sim_submitter.hpp"
#include "stats/distribution.hpp"
#include "support/flight_recorder.hpp"
#include "support/rng.hpp"
#include "trace/lifecycle.hpp"

namespace tasksim {
namespace {

using flightrec::Event;
using flightrec::EventType;
using flightrec::FlightRecorder;

/// Every test drives the process-wide recorder; reset it on entry and exit
/// so tests cannot leak state into each other.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::global().disable();
    FlightRecorder::global().clear();
  }
  void TearDown() override {
    FlightRecorder::global().disable();
    FlightRecorder::global().clear();
  }
};

TEST_F(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  FlightRecorder& fr = FlightRecorder::global();
  EXPECT_FALSE(fr.enabled());
  fr.record(EventType::task_submit, 1);
  fr.name_task(1, "k");
  const flightrec::Stream stream = fr.drain();
  EXPECT_TRUE(stream.events.empty());
  EXPECT_TRUE(stream.kernels.empty());
  EXPECT_EQ(stream.dropped, 0u);
}

TEST_F(FlightRecorderTest, RecordDrainRoundTrip) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.enable();
  fr.name_task(7, "dgemm");
  fr.record(EventType::task_submit, 7);
  fr.record(EventType::task_dispatch, 7, /*worker=*/3);
  fr.record(EventType::teq_enter, 7, 3, /*a=*/10.0, /*b=*/25.0, /*other=*/2);
  fr.disable();

  const flightrec::Stream stream = fr.drain();
  ASSERT_EQ(stream.events.size(), 3u);
  EXPECT_EQ(stream.kernels.at(7), "dgemm");
  EXPECT_GE(stream.shard_count, 1u);
  const Event& enter = stream.events[2];
  EXPECT_EQ(enter.type, EventType::teq_enter);
  EXPECT_EQ(enter.task, 7u);
  EXPECT_EQ(enter.worker, 3);
  EXPECT_DOUBLE_EQ(enter.a, 10.0);
  EXPECT_DOUBLE_EQ(enter.b, 25.0);
  EXPECT_EQ(enter.other, 2u);
  // One recording thread: wall timestamps are non-decreasing.
  for (std::size_t i = 1; i < stream.events.size(); ++i) {
    EXPECT_LE(stream.events[i - 1].wall_us, stream.events[i].wall_us);
  }
  // Drain is destructive.
  EXPECT_TRUE(fr.drain().events.empty());
}

TEST_F(FlightRecorderTest, FullRingOverwritesOldestAndCountsDropped) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.enable(/*per_thread_capacity=*/16);
  for (std::uint64_t i = 0; i < 100; ++i) {
    fr.record(EventType::clock_advance, i);
  }
  fr.disable();
  const flightrec::Stream stream = fr.drain();
  ASSERT_EQ(stream.events.size(), 16u);
  EXPECT_EQ(stream.dropped, 84u);
  // The survivors are the newest 16, in order.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(stream.events[i].task, 84u + i);
  }
  // validate_stream flags the truncation.
  const auto violations = trace::validate_stream(stream);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("dropped"), std::string::npos);
}

TEST_F(FlightRecorderTest, ThreadsRecordIntoIndependentShards) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.enable();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fr, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        fr.record(EventType::quiescence_spin,
                  static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  fr.disable();
  const flightrec::Stream stream = fr.drain();
  EXPECT_EQ(stream.events.size(), kThreads * kPerThread);
  EXPECT_EQ(stream.dropped, 0u);
  EXPECT_GE(stream.shard_count, static_cast<std::size_t>(kThreads));
  // Per-shard monotonicity survives the global merge.
  EXPECT_TRUE(trace::validate_stream(stream).empty());
}

// ------------------------------------------------------ synthetic streams

/// Builds streams by hand to exercise the analyses on exact event patterns.
struct StreamBuilder {
  flightrec::Stream stream;
  double wall = 0.0;

  Event& add(EventType type, std::uint64_t task = flightrec::kNoTask,
             int worker = -1, double a = 0.0, double b = 0.0,
             std::uint64_t other = 0) {
    Event e;
    e.wall_us = (wall += 1.0);
    e.type = type;
    e.task = task;
    e.worker = worker;
    e.a = a;
    e.b = b;
    e.other = other;
    stream.events.push_back(e);
    return stream.events.back();
  }

  /// Full lifecycle of one simulated task.
  void task(std::uint64_t id, int worker, double vstart, double vend) {
    add(EventType::task_submit, id);
    body(id, worker, vstart, vend);
  }

  /// Lifecycle after submission, for streams where tasks are submitted up
  /// front (as a non-racing run records them) and executed later.
  void body(std::uint64_t id, int worker, double vstart, double vend) {
    add(EventType::task_ready, id);
    add(EventType::task_dispatch, id, worker);
    add(EventType::task_start, id, worker);
    add(EventType::teq_enter, id, worker, vstart, vend, id);
    add(EventType::teq_front, id, worker, vend);
    add(EventType::task_return, id, worker, vend);
    add(EventType::task_finish, id, worker);
  }
};

TEST_F(FlightRecorderTest, BuildLifecycleAssemblesStages) {
  StreamBuilder b;
  b.stream.kernels[0] = "dpotrf";
  b.task(0, 2, 100.0, 250.0);
  b.add(EventType::dep_edge, /*consumer=*/1, -1, 0, 0, /*producer=*/0);
  b.task(1, 0, 250.0, 300.0);

  const trace::LifecycleLog log = trace::build_lifecycle(b.stream);
  ASSERT_EQ(log.tasks.size(), 2u);
  const trace::TaskLifecycle& lc = log.tasks.at(0);
  EXPECT_EQ(lc.kernel, "dpotrf");
  EXPECT_EQ(lc.worker, 2);
  EXPECT_TRUE(lc.has_virtual_times());
  EXPECT_DOUBLE_EQ(lc.virtual_start_us, 100.0);
  EXPECT_DOUBLE_EQ(lc.virtual_end_us, 250.0);
  EXPECT_TRUE(lc.returned);
  EXPECT_TRUE(lc.finished);
  EXPECT_LT(lc.submit_us, lc.ready_us);
  EXPECT_LT(lc.ready_us, lc.dispatch_us);
  EXPECT_LT(lc.dispatch_us, lc.start_us);
  EXPECT_LT(lc.start_us, lc.finish_us);
  ASSERT_EQ(log.edges.size(), 1u);
  EXPECT_EQ(log.edges[0].first, 0u);   // producer
  EXPECT_EQ(log.edges[0].second, 1u);  // consumer
}

TEST_F(FlightRecorderTest, ValidateStreamAcceptsWellFormedStream) {
  // Edges are recorded by the submitting thread right after the consumer's
  // task_submit, so both endpoints precede the edge in the stream.
  StreamBuilder b;
  b.task(0, 0, 0.0, 100.0);
  b.task(1, 1, 100.0, 180.0);
  b.add(EventType::dep_edge, 1, -1, 0, 0, 0);
  EXPECT_TRUE(trace::validate_stream(b.stream).empty());
}

TEST_F(FlightRecorderTest, ValidateStreamCatchesProtocolViolations) {
  // Double submit.
  {
    StreamBuilder b;
    b.task(0, 0, 0.0, 1.0);
    b.add(EventType::task_submit, 0);
    const auto v = trace::validate_stream(b.stream);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].find("2 submit events"), std::string::npos);
  }
  // Finish without start.
  {
    StreamBuilder b;
    b.add(EventType::task_submit, 3);
    b.add(EventType::task_finish, 3, 0);
    const auto v = trace::validate_stream(b.stream);
    EXPECT_FALSE(v.empty());
    bool found = false;
    for (const auto& msg : v) {
      found = found || msg.find("finished without starting") != std::string::npos;
    }
    EXPECT_TRUE(found);
  }
  // Dependence edge to an unrecorded producer.
  {
    StreamBuilder b;
    b.task(0, 0, 0.0, 1.0);
    b.add(EventType::dep_edge, 0, -1, 0, 0, /*producer=*/99);
    const auto v = trace::validate_stream(b.stream);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].find("unrecorded producer"), std::string::npos);
  }
  // Non-monotone timestamps within one shard.
  {
    StreamBuilder b;
    b.task(0, 0, 0.0, 1.0);
    b.stream.events.back().wall_us = 0.5;  // jumps backward
    const auto v = trace::validate_stream(b.stream);
    bool found = false;
    for (const auto& msg : v) {
      found = found || msg.find("not monotone") != std::string::npos;
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(FlightRecorderTest, AuditRacesDetectsBackwardReturns) {
  // In-order returns with the whole DAG submitted before execution (as a
  // non-racing run records it): clean.
  {
    StreamBuilder b;
    b.add(EventType::task_submit, 0);
    b.add(EventType::task_submit, 1);
    b.add(EventType::dep_edge, 1, -1, 0, 0, /*producer=*/0);
    b.body(0, 0, 0.0, 100.0);
    b.body(1, 1, 100.0, 200.0);
    const trace::RaceAudit audit =
        trace::audit_races(trace::build_lifecycle(b.stream));
    EXPECT_EQ(audit.tasks_returned, 2u);
    EXPECT_TRUE(audit.violations.empty());
  }
  // Task 2 returns with an earlier virtual completion than task 1 did: the
  // §V-E race made the virtual timeline go backward.
  {
    StreamBuilder b;
    for (std::uint64_t id : {0, 1, 2}) {
      b.add(EventType::task_submit, id);
    }
    b.add(EventType::dep_edge, 1, -1, 0, 0, /*producer=*/0);
    b.add(EventType::dep_edge, 2, -1, 0, 0, /*producer=*/0);
    b.body(0, 0, 0.0, 100.0);
    b.body(1, 1, 100.0, 300.0);
    b.body(2, 2, 100.0, 150.0);
    const trace::RaceAudit audit =
        trace::audit_races(trace::build_lifecycle(b.stream));
    ASSERT_EQ(audit.violations.size(), 1u);
    EXPECT_EQ(audit.violations[0].task, 2u);
    EXPECT_EQ(audit.violations[0].prior_task, 1u);
    EXPECT_DOUBLE_EQ(audit.violations[0].task_completion_us, 150.0);
    EXPECT_DOUBLE_EQ(audit.violations[0].prior_completion_us, 300.0);
    const std::string text = audit.to_string();
    EXPECT_NE(text.find("1 violation"), std::string::npos);
    EXPECT_NE(text.find("task 2"), std::string::npos);
  }
}

TEST_F(FlightRecorderTest, AuditRacesDetectsInflatedStarts) {
  StreamBuilder b;
  // Task 0 is dispatched and enters the queue normally.
  b.add(EventType::task_submit, 0, 0);
  b.add(EventType::task_ready, 0, 0);
  b.add(EventType::task_dispatch, 0, 0);
  b.add(EventType::task_start, 0, 0);
  b.add(EventType::teq_enter, 0, 0, 0.0, 100.0, 0);
  // Task 1 becomes ready (virtual clock still 0) and is dispatched on the
  // idle worker 1, but is preempted before it samples the clock...
  b.add(EventType::task_submit, 1, 1);
  b.add(EventType::task_ready, 1, 1);
  b.add(EventType::task_dispatch, 1, 1);
  b.add(EventType::task_start, 1, 1);
  // ...while task 0 reaches the front and returns, advancing the clock
  // under it (the §V-E interleaving the quiescence query prevents).
  b.add(EventType::teq_front, 0, 0, 0.0, 100.0, 0);
  b.add(EventType::task_return, 0, 0, 100.0);
  b.add(EventType::task_finish, 0, 0);
  // Task 1 then samples the advanced clock: start 100 although it was
  // runnable on a free worker at virtual 0.
  b.add(EventType::teq_enter, 1, 1, 100.0, 130.0, 1);
  b.add(EventType::teq_front, 1, 1, 100.0, 130.0, 1);
  b.add(EventType::task_return, 1, 1, 130.0);
  b.add(EventType::task_finish, 1, 1);

  const trace::RaceAudit audit =
      trace::audit_races(trace::build_lifecycle(b.stream));
  ASSERT_EQ(audit.violations.size(), 1u);
  const trace::RaceViolation& v = audit.violations[0];
  EXPECT_EQ(v.kind, trace::RaceViolation::Kind::inflated_start);
  EXPECT_EQ(v.task, 1u);
  EXPECT_EQ(v.prior_task, 0u);  // the return that advanced the clock
  EXPECT_DOUBLE_EQ(v.task_completion_us, 100.0);  // the start task 1 read
  EXPECT_DOUBLE_EQ(v.prior_completion_us, 0.0);   // when it became runnable
  EXPECT_NE(audit.to_string().find("became runnable"), std::string::npos);
}

TEST_F(FlightRecorderTest, AuditRacesAcceptsStartMatchingReadinessFloor) {
  // Same interleaving of records, but task 1 sampled the clock BEFORE task
  // 0's return advanced it (its teq_enter record simply landed later): its
  // start matches the clock at the moment it became ready.  Not a race.
  StreamBuilder b;
  b.add(EventType::task_submit, 0, 0);
  b.add(EventType::task_ready, 0, 0);
  b.add(EventType::task_dispatch, 0, 0);
  b.add(EventType::task_start, 0, 0);
  b.add(EventType::teq_enter, 0, 0, 0.0, 100.0, 0);
  b.add(EventType::task_submit, 1, 1);
  b.add(EventType::task_ready, 1, 1);
  b.add(EventType::task_dispatch, 1, 1);
  b.add(EventType::task_start, 1, 1);
  b.add(EventType::teq_front, 0, 0, 0.0, 100.0, 0);
  b.add(EventType::task_return, 0, 0, 100.0);
  b.add(EventType::task_finish, 0, 0);
  b.add(EventType::teq_enter, 1, 1, 0.0, 150.0, 1);
  b.add(EventType::teq_front, 1, 1, 0.0, 150.0, 1);
  b.add(EventType::task_return, 1, 1, 150.0);
  b.add(EventType::task_finish, 1, 1);

  const trace::RaceAudit audit =
      trace::audit_races(trace::build_lifecycle(b.stream));
  EXPECT_TRUE(audit.violations.empty());
}

TEST_F(FlightRecorderTest, AuditRacesDetectsLateSubmissions) {
  // Fully serialized race: task 1 is submitted only after task 0 returned,
  // so no dependence ever materialized and its start matches the corrupted
  // submit-time clock.  The clock rise between the two submissions with
  // lane 1 virtually idle is the only observable evidence.
  {
    StreamBuilder b;
    b.task(0, 0, 0.0, 100.0);
    b.task(1, 1, 100.0, 200.0);
    const trace::RaceAudit audit =
        trace::audit_races(trace::build_lifecycle(b.stream));
    ASSERT_EQ(audit.violations.size(), 1u);
    const trace::RaceViolation& v = audit.violations[0];
    EXPECT_EQ(v.kind, trace::RaceViolation::Kind::late_submission);
    EXPECT_EQ(v.task, 1u);
    EXPECT_EQ(v.prior_task, 0u);
    EXPECT_DOUBLE_EQ(v.task_completion_us, 100.0);
    EXPECT_DOUBLE_EQ(v.prior_completion_us, 0.0);
    EXPECT_NE(audit.to_string().find("outran the submitter"),
              std::string::npos);
  }
  // Same shape, but the submitter was window-blocked across task 0's
  // return: completions folding in while the window is full are how the
  // submitter makes progress, not a race.
  {
    StreamBuilder b;
    b.task(0, 0, 0.0, 100.0);
    b.add(EventType::window_unblock, flightrec::kNoTask, -1, /*a=*/12.0);
    b.task(1, 1, 100.0, 200.0);
    const trace::RaceAudit audit =
        trace::audit_races(trace::build_lifecycle(b.stream));
    EXPECT_TRUE(audit.violations.empty()) << audit.to_string();
  }
}

TEST_F(FlightRecorderTest, AttributionDecomposesSerialChain) {
  StreamBuilder b;
  b.task(0, 0, 0.0, 100.0);
  b.add(EventType::dep_edge, 1, -1, 0, 0, 0);
  b.task(1, 0, 100.0, 220.0);
  b.add(EventType::dep_edge, 2, -1, 0, 0, 1);
  b.task(2, 0, 220.0, 300.0);

  const trace::AttributionReport report =
      trace::attribute_makespan(trace::build_lifecycle(b.stream));
  EXPECT_DOUBLE_EQ(report.virtual_makespan_us, 300.0);
  EXPECT_EQ(report.chain_length, 3u);
  EXPECT_DOUBLE_EQ(report.chain_kernel_us, 300.0);
  EXPECT_DOUBLE_EQ(report.chain_gap_us, 0.0);
  // StreamBuilder spaces every event 1 wall-us apart, so each chain task
  // contributes 1 us of TEQ wait (enter -> front), 1 us of scheduler wait
  // (ready -> dispatch) and 4 us of bookkeeping (dispatch -> start ->
  // teq_enter is 2, teq_front -> return -> finish is 2).
  EXPECT_DOUBLE_EQ(report.chain_teq_wait_us, 3.0);
  EXPECT_DOUBLE_EQ(report.chain_sched_wait_us, 3.0);
  EXPECT_DOUBLE_EQ(report.chain_bookkeeping_us, 12.0);
}

TEST_F(FlightRecorderTest, AttributionSeesWindowWaitAndGaps) {
  StreamBuilder b;
  b.task(0, 0, 0.0, 100.0);
  b.add(EventType::window_unblock, flightrec::kNoTask, -1, /*a=*/42.5);
  // Task 1 follows on the same worker after an idle gap: no dependence, so
  // the binding blocker is the same-worker predecessor.
  b.task(1, 0, 150.0, 200.0);
  const trace::AttributionReport report =
      trace::attribute_makespan(trace::build_lifecycle(b.stream));
  EXPECT_DOUBLE_EQ(report.window_wait_us, 42.5);
  EXPECT_DOUBLE_EQ(report.virtual_makespan_us, 200.0);
  // Chain: task 1 (50 us kernel) <- task 0 (100 us, ends before 150).
  EXPECT_DOUBLE_EQ(report.chain_kernel_us, 150.0);
  EXPECT_DOUBLE_EQ(report.chain_gap_us, 50.0);
}

TEST_F(FlightRecorderTest, RenderLifecycleEmitsSpansAndFlows) {
  StreamBuilder b;
  b.stream.kernels[0] = "dgemm \"odd\" name";
  b.task(0, 0, 0.0, 100.0);
  b.add(EventType::dep_edge, 1, -1, 0, 0, 0);
  b.task(1, 1, 100.0, 160.0);

  const auto events =
      trace::render_lifecycle_events(trace::build_lifecycle(b.stream), 2);
  // 2 span events per task + 2 flow events for the edge.
  ASSERT_EQ(events.size(), 6u);
  int begins = 0, ends = 0, flow_starts = 0, flow_finishes = 0;
  for (const std::string& e : events) {
    if (e.find("\"ph\":\"b\"") != std::string::npos) ++begins;
    if (e.find("\"ph\":\"e\"") != std::string::npos) ++ends;
    if (e.find("\"ph\":\"s\"") != std::string::npos) ++flow_starts;
    if (e.find("\"ph\":\"f\"") != std::string::npos) ++flow_finishes;
    EXPECT_EQ(e.find('\n'), std::string::npos);  // single JSON object
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(flow_starts, 1);
  EXPECT_EQ(flow_finishes, 1);
  // Kernel names are escaped, not embedded raw.
  EXPECT_NE(events[0].find("\\\"odd\\\""), std::string::npos);
}

// --------------------------------------- property test: randomized DAGs

class RecorderDagTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllSchedulers, RecorderDagTest,
                         ::testing::Values("quark", "starpu/eager",
                                           "starpu/dmda", "ompss/bf"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

TEST_P(RecorderDagTest, RandomizedDagStreamsAreWellFormed) {
  // Submit randomized DAGs through the full scheduler + simulator stack and
  // assert the recorded stream is well-formed: every task reaches exactly
  // one terminal state through legal transitions, every dependence edge
  // references recorded tasks, per-thread timestamps are monotone (all via
  // validate_stream), and the assembled lifecycles are complete.
  for (std::uint64_t seed : {11ull, 23ull, 47ull}) {
    Rng rng(seed);
    FlightRecorder& fr = FlightRecorder::global();
    fr.enable();

    sim::KernelModelSet models;
    models.set_model("k", std::make_unique<stats::ConstantDist>(25.0));
    sched::RuntimeConfig config;
    config.workers = 4;
    config.seed = seed;
    auto rt = sched::make_runtime(GetParam(), config);
    sim::SimEngineOptions options;
    options.mitigation = sim::RaceMitigation::quiescence;
    sim::SimEngine engine(models, options);
    sim::SimSubmitter submitter(*rt, engine);

    constexpr std::size_t kTasks = 64;
    double objects[12];
    for (std::size_t i = 0; i < kTasks; ++i) {
      sched::AccessList accesses;
      const std::size_t arity = 1 + rng.uniform_index(3);
      for (std::size_t a = 0; a < arity; ++a) {
        double* obj = &objects[rng.uniform_index(12)];
        switch (rng.uniform_index(3)) {
          case 0: accesses.push_back(sched::in(obj)); break;
          case 1: accesses.push_back(sched::out(obj)); break;
          default: accesses.push_back(sched::inout(obj)); break;
        }
      }
      submitter.submit("k", nullptr, std::move(accesses));
    }
    submitter.finish();
    fr.disable();

    flightrec::Stream stream = fr.drain();
    const auto violations = trace::validate_stream(stream);
    for (const auto& v : violations) ADD_FAILURE() << v;

    const trace::LifecycleLog log = trace::build_lifecycle(std::move(stream));
    EXPECT_EQ(log.tasks.size(), kTasks);
    for (const auto& [id, lc] : log.tasks) {
      EXPECT_TRUE(lc.finished) << "task " << id;
      EXPECT_TRUE(lc.returned) << "task " << id;
      EXPECT_TRUE(lc.has_virtual_times()) << "task " << id;
      EXPECT_GE(lc.worker, 0) << "task " << id;
    }
    for (const auto& [producer, consumer] : log.edges) {
      EXPECT_TRUE(log.tasks.count(producer));
      EXPECT_TRUE(log.tasks.count(consumer));
    }
    // Quiescence mitigation holds the TEQ ordering, so the auditor must
    // find a clean virtual timeline.
    const trace::RaceAudit audit = trace::audit_races(log);
    EXPECT_EQ(audit.tasks_returned, kTasks);
    EXPECT_TRUE(audit.violations.empty()) << audit.to_string();
    // The recorded makespan attribution covers the simulated makespan.
    const trace::AttributionReport report = trace::attribute_makespan(log);
    EXPECT_DOUBLE_EQ(report.virtual_makespan_us,
                     engine.trace().makespan_us());
    EXPECT_GT(report.chain_length, 0u);
    EXPECT_LE(report.chain_kernel_us,
              report.virtual_makespan_us + 1e-6);
  }
}

}  // namespace
}  // namespace tasksim
