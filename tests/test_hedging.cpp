// Tests for the tail-aware resilience layer (DESIGN.md §12): straggler
// hedging with cooperative cancellation through the TEQ.
//
// The invariants pinned here:
//
//   * ticket-leak freedom — after a drained run every launched duplicate
//     cancelled exactly once (hedges_cancelled == hedges_launched) and
//     the queue is empty,
//   * hedging can only tighten the timeline: the hedged makespan never
//     exceeds the unhedged makespan of the same DAG under the same tail
//     injection, and the winner commits min(original, duplicate) spans,
//   * §V-E cleanliness — a hedged serialized run and a hedged
//     conservative-lookahead run audit with zero violations (hedged
//     commits travel the CompletionGovernor without reordering the
//     timeline), and the conservative run reproduces the serialized
//     hedged makespan exactly,
//   * optimistic speculation with hedging stays fully repairable
//     (zero unrepaired tasks),
//   * hedge decisions are pure functions of (seed, kernel, ordinal,
//     attempt): a rerun reproduces makespan and every hedge counter.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/factory.hpp"
#include "sched/hedging.hpp"
#include "sim/fault_injection.hpp"
#include "sim/kernel_model.hpp"
#include "sim/lookahead.hpp"
#include "sim/sim_engine.hpp"
#include "sim/sim_submitter.hpp"
#include "stats/distribution.hpp"
#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/rng.hpp"
#include "trace/lifecycle.hpp"

namespace tasksim::sim {
namespace {

// Distinct constants per kernel class: durations are a pure function of
// the kernel, so hedge triggers (clean-model quantiles) and every sampled
// span are identical across runs whatever the thread interleaving.
KernelModelSet distinct_constant_models() {
  KernelModelSet models;
  models.set_model("k0", std::make_unique<stats::ConstantDist>(70.0));
  models.set_model("k1", std::make_unique<stats::ConstantDist>(110.0));
  models.set_model("k2", std::make_unique<stats::ConstantDist>(90.0));
  models.set_model("k3", std::make_unique<stats::ConstantDist>(50.0));
  return models;
}

struct HedgeRun {
  double makespan_us = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t launched = 0;
  std::uint64_t won = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t wasted_us = 0;
  std::size_t audit_findings = 0;
  std::uint64_t violations = 0;  ///< optimistic repair: detected
  std::uint64_t unrepaired = 0;  ///< optimistic repair: not replayable
  std::string audit_text;
};

/// Run a randomized DAG (fixed seed => fixed structure => fixed fault
/// ordinals) with a deterministic heavy-tail fault plan.  Every task
/// writes one of `objects` tiles, so parallelism never exceeds `objects`;
/// pick objects <= workers for the conservative-exactness property.
HedgeRun run_hedged_dag(const std::string& scheduler, int workers,
                        int objects, int tasks, LookaheadMode mode,
                        double lookahead_us, bool hedge) {
  const KernelModelSet models = distinct_constant_models();
  sched::RuntimeConfig rc;
  rc.workers = workers;
  auto rt = sched::make_runtime(scheduler, rc);

  // p=0.3 x12 with shape 0: roughly a third of the attempts inflate to
  // exactly 12x, far beyond every trigger (quantile x margin of a
  // constant model = model x 1.5), so hedges reliably launch and win.
  FaultPlanConfig fault_config =
      parse_fault_spec("*:tailp=0.3,tailmult=12,tailshape=0");
  fault_config.seed = 99;
  FaultPlan plan(fault_config);

  SimEngineOptions options;
  options.lookahead_mode = mode;
  options.lookahead_us = lookahead_us;
  options.faults = &plan;
  options.hedging.enabled = hedge;
  options.hedging.quantile = 0.95;
  options.hedging.margin = 1.5;
  SimEngine engine(models, options);
  SimSubmitter submitter(*rt, engine);

  flightrec::FlightRecorder& recorder = flightrec::FlightRecorder::global();
  recorder.enable(1 << 16);

  Rng rng(61);
  std::vector<double> tiles(static_cast<std::size_t>(objects));
  for (int t = 0; t < tasks; ++t) {
    const std::size_t own = rng.uniform_index(tiles.size());
    sched::AccessList accesses{sched::inout(&tiles[own])};
    if (rng.uniform() < 0.5) {
      const std::size_t other = rng.uniform_index(tiles.size());
      if (other != own) accesses.push_back(sched::in(&tiles[other]));
    }
    const std::string kernel = "k" + std::to_string(rng.uniform_index(4));
    submitter.submit(kernel, nullptr, std::move(accesses));
  }
  submitter.finish();
  recorder.disable();

  HedgeRun result;
  result.makespan_us = engine.virtual_time_us();
  result.tasks = engine.executed_tasks();
  result.launched = engine.hedges_launched();
  result.won = engine.hedges_won();
  result.cancelled = engine.hedges_cancelled();
  result.wasted_us = engine.hedge_wasted_us();

  trace::LifecycleLog log = trace::build_lifecycle(recorder.drain());
  log.worker_lanes = workers;
  const trace::RaceAudit audit = trace::audit_races(log);
  result.audit_findings = audit.violations.size();
  result.audit_text = audit.to_string();
  if (mode == LookaheadMode::optimistic) {
    const RepairReport repair = repair_virtual_trace(log, audit);
    result.violations = repair.violations;
    result.unrepaired = repair.unrepaired;
  }
  return result;
}

class HedgingSchedulerTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllSchedulers, HedgingSchedulerTest,
                         ::testing::Values("quark", "starpu/dmda", "ompss/bf"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

TEST(HedgeConfig, ValidateRejectsNonsense) {
  sched::HedgeConfig config;
  config.enabled = true;
  config.validate();  // defaults are sane
  config.quantile = 1.5;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.quantile = 0.95;
  config.margin = 0.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.margin = 1.5;
  config.threshold_samples = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST_P(HedgingSchedulerTest, HedgedRunDrainsCleanAndTightensMakespan) {
  const std::string scheduler = GetParam();
  const HedgeRun plain = run_hedged_dag(scheduler, 4, 3, 60,
                                        LookaheadMode::off, 0.0,
                                        /*hedge=*/false);
  const HedgeRun hedged = run_hedged_dag(scheduler, 4, 3, 60,
                                         LookaheadMode::off, 0.0,
                                         /*hedge=*/true);
  ASSERT_EQ(hedged.tasks, plain.tasks);
  EXPECT_EQ(plain.launched, 0u);
  // The p=0.3 x12 tail must trip the trigger on this DAG.
  EXPECT_GT(hedged.launched, 0u);
  EXPECT_GT(hedged.won, 0u);
  EXPECT_LE(hedged.won, hedged.launched);
  // Ticket-leak freedom: every duplicate left the queue exactly once.
  EXPECT_EQ(hedged.cancelled, hedged.launched);
  // A winner commits min(original, duplicate): completions only move
  // earlier, so the hedged makespan never exceeds the unhedged one —
  // and under this tail it strictly improves.
  EXPECT_LT(hedged.makespan_us, plain.makespan_us);
  // §V-E: hedged commits preserve the serialized timeline.
  EXPECT_EQ(hedged.audit_findings, 0u) << hedged.audit_text;
}

TEST_P(HedgingSchedulerTest, ConservativeLookaheadInvisibleWithHedging) {
  const std::string scheduler = GetParam();
  const HedgeRun serialized = run_hedged_dag(scheduler, 4, 3, 60,
                                             LookaheadMode::off, 0.0,
                                             /*hedge=*/true);
  const HedgeRun conservative = run_hedged_dag(
      scheduler, 4, 3, 60, LookaheadMode::conservative, 80.0,
      /*hedge=*/true);
  // Hedged winners travel the CompletionGovernor (deferred in-order
  // commits) without perturbing the timeline: identical makespan, zero
  // audit findings, no leaked duplicate tickets.
  EXPECT_DOUBLE_EQ(conservative.makespan_us, serialized.makespan_us);
  EXPECT_EQ(conservative.audit_findings, 0u) << conservative.audit_text;
  EXPECT_GT(conservative.launched, 0u);
  EXPECT_EQ(conservative.cancelled, conservative.launched);
}

TEST_P(HedgingSchedulerTest, OptimisticSpeculationStaysRepairable) {
  const std::string scheduler = GetParam();
  const HedgeRun optimistic = run_hedged_dag(
      scheduler, 4, 3, 60, LookaheadMode::optimistic, 80.0,
      /*hedge=*/true);
  // Speculative releases may misorder the virtual trace (that is the
  // mode's contract), but with hedge duplicates in the stream the repair
  // pass must still replay every task: zero unrepaired.
  EXPECT_GT(optimistic.launched, 0u);
  EXPECT_EQ(optimistic.cancelled, optimistic.launched);
  EXPECT_EQ(optimistic.unrepaired, 0u)
      << optimistic.violations << " violations, audit:\n"
      << optimistic.audit_text;
}

TEST_P(HedgingSchedulerTest, HedgeDecisionsAreDeterministic) {
  const std::string scheduler = GetParam();
  const HedgeRun first = run_hedged_dag(scheduler, 4, 3, 60,
                                        LookaheadMode::off, 0.0,
                                        /*hedge=*/true);
  const HedgeRun second = run_hedged_dag(scheduler, 4, 3, 60,
                                         LookaheadMode::off, 0.0,
                                         /*hedge=*/true);
  // Decisions hash (seed, kernel, submission ordinal, attempt); nothing
  // depends on the interleaving, so the rerun reproduces everything.
  EXPECT_DOUBLE_EQ(second.makespan_us, first.makespan_us);
  EXPECT_EQ(second.launched, first.launched);
  EXPECT_EQ(second.won, first.won);
  EXPECT_EQ(second.cancelled, first.cancelled);
  EXPECT_EQ(second.wasted_us, first.wasted_us);
}

}  // namespace
}  // namespace tasksim::sim
