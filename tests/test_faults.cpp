// Tests for the robustness subsystem: deterministic fault injection,
// retry/backoff and poisoning in the runtimes, TaskExecQueue cancellation,
// and the progress watchdog (ISSUE 4).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "harness/experiment.hpp"
#include "sched/factory.hpp"
#include "sim/fault_injection.hpp"
#include "sim/kernel_model.hpp"
#include "sim/sim_engine.hpp"
#include "sim/sim_submitter.hpp"
#include "sim/task_exec_queue.hpp"
#include "stats/distribution.hpp"
#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/strings.hpp"
#include "support/watchdog.hpp"
#include "trace/lifecycle.hpp"
#include "trace/text_io.hpp"

namespace tasksim::sim {
namespace {

KernelModelSet constant_models(double duration_us) {
  KernelModelSet models;
  models.set_model("k", std::make_unique<stats::ConstantDist>(duration_us));
  return models;
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, DecisionsArePureFunctionsOfTheConfig) {
  FaultPlanConfig config;
  config.seed = 99;
  config.rules["gemm"].fail_probability = 0.3;
  const FaultPlan one(config);
  const FaultPlan two(config);
  int failures = 0;
  for (std::uint64_t ordinal = 0; ordinal < 200; ++ordinal) {
    const FaultDecision a = one.decide("gemm", ordinal, 0);
    const FaultDecision b = two.decide("gemm", ordinal, 0);
    EXPECT_EQ(a.fail, b.fail);
    EXPECT_EQ(a.progress_fraction, b.progress_fraction);
    EXPECT_EQ(a.stall_us, b.stall_us);
    failures += a.fail ? 1 : 0;
  }
  // ~Binomial(200, 0.3): a wildly different count means broken hashing.
  EXPECT_GT(failures, 30);
  EXPECT_LT(failures, 90);
}

TEST(FaultPlan, NthRuleFailsExactlyEveryNthSubmission) {
  FaultPlanConfig config;
  config.rules["k"].fail_every_nth = 3;
  config.rules["k"].progress_fraction = 0.25;
  const FaultPlan plan(config);
  for (std::uint64_t ordinal = 0; ordinal < 12; ++ordinal) {
    const FaultDecision d = plan.decide("k", ordinal, 0);
    EXPECT_EQ(d.fail, (ordinal + 1) % 3 == 0) << "ordinal " << ordinal;
    if (d.fail) {
      EXPECT_DOUBLE_EQ(d.progress_fraction, 0.25);
    }
  }
}

TEST(FaultPlan, RetryAttemptsNeverReFail) {
  FaultPlanConfig config;
  config.rules["k"].fail_probability = 1.0;
  config.rules["k"].fail_every_nth = 1;
  const FaultPlan plan(config);
  EXPECT_TRUE(plan.decide("k", 0, 0).fail);
  EXPECT_FALSE(plan.decide("k", 0, 1).fail);
  EXPECT_FALSE(plan.decide("k", 0, 2).fail);
}

TEST(FaultPlan, BackoffDoublesAndSaturates) {
  FaultPlanConfig config;
  config.retry_backoff_us = 50.0;
  config.retry_backoff_cap_us = 300.0;
  const FaultPlan plan(config);
  EXPECT_DOUBLE_EQ(plan.backoff_us(0), 0.0);
  EXPECT_DOUBLE_EQ(plan.backoff_us(1), 50.0);
  EXPECT_DOUBLE_EQ(plan.backoff_us(2), 100.0);
  EXPECT_DOUBLE_EQ(plan.backoff_us(3), 200.0);
  EXPECT_DOUBLE_EQ(plan.backoff_us(4), 300.0);  // capped
  EXPECT_DOUBLE_EQ(plan.backoff_us(10), 300.0);
}

TEST(FaultPlan, OrdinalsArePerKernelAndResettable) {
  FaultPlanConfig config;
  config.rules["*"].fail_every_nth = 2;
  FaultPlan plan(config);
  EXPECT_EQ(plan.register_submission("a"), 0u);
  EXPECT_EQ(plan.register_submission("a"), 1u);
  EXPECT_EQ(plan.register_submission("b"), 0u);
  plan.reset();
  EXPECT_EQ(plan.register_submission("a"), 0u);
}

TEST(FaultPlan, SpecParserRoundTrip) {
  const FaultPlanConfig config =
      parse_fault_spec("gemm:p=0.05,frac=0.25;*:nth=100,stall=200,stallp=0.1");
  ASSERT_EQ(config.rules.size(), 2u);
  const KernelFaultRule& gemm = config.rules.at("gemm");
  EXPECT_DOUBLE_EQ(gemm.fail_probability, 0.05);
  EXPECT_DOUBLE_EQ(gemm.progress_fraction, 0.25);
  const KernelFaultRule& any = config.rules.at("*");
  EXPECT_EQ(any.fail_every_nth, 100u);
  EXPECT_DOUBLE_EQ(any.stall_us, 200.0);
  EXPECT_DOUBLE_EQ(any.stall_probability, 0.1);
}

TEST(FaultPlan, SpecParserDefaultsStallProbabilityToAlways) {
  const FaultPlanConfig config = parse_fault_spec("k:stall=50");
  EXPECT_DOUBLE_EQ(config.rules.at("k").stall_probability, 1.0);
}

TEST(FaultPlan, SpecParserRejectsNonsense) {
  EXPECT_THROW(parse_fault_spec("gemm"), InvalidArgument);
  EXPECT_THROW(parse_fault_spec("gemm:p"), InvalidArgument);
  EXPECT_THROW(parse_fault_spec("gemm:bogus=1"), InvalidArgument);
  EXPECT_THROW(parse_fault_spec("k:p=0.1;k:p=0.2"), InvalidArgument);
  EXPECT_THROW(parse_fault_spec("k:p=1.5"), InvalidArgument);
  EXPECT_THROW(parse_fault_spec("k:p=nan"), InvalidArgument);
}

TEST(FaultPlan, ConfigValidationRejectsOutOfDomainValues) {
  {
    FaultPlanConfig config;
    config.rules["k"].fail_probability = -0.1;
    EXPECT_THROW(config.validate(), InvalidArgument);
  }
  {
    FaultPlanConfig config;
    config.rules["k"].progress_fraction = 2.0;
    EXPECT_THROW(config.validate(), InvalidArgument);
  }
  {
    FaultPlanConfig config;
    config.retry_backoff_us = -1.0;
    EXPECT_THROW(config.validate(), InvalidArgument);
  }
}

// ------------------------------------------------- option validation (CLI)

TEST(OptionValidation, ParseDoubleRejectsNonFiniteValues) {
  EXPECT_THROW(parse_double("nan"), InvalidArgument);
  EXPECT_THROW(parse_double("inf"), InvalidArgument);
  EXPECT_THROW(parse_double("-inf"), InvalidArgument);
  EXPECT_DOUBLE_EQ(parse_double("0.5"), 0.5);
}

TEST(OptionValidation, ExperimentConfigValidateCatchesBadNumbers) {
  harness::ExperimentConfig config;
  config.watchdog_timeout_us = -1.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.watchdog_timeout_us = 0.0;
  config.max_task_retries = -1;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.max_task_retries = 3;
  config.faults.emplace();
  config.faults->rules["k"].fail_probability = 7.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(OptionValidation, RuntimeConfigRejectsNegativeRetryBudget) {
  sched::RuntimeConfig config;
  config.max_task_retries = -1;
  EXPECT_THROW(sched::make_runtime("quark", config), InvalidArgument);
}

TEST(OptionValidation, FailureModeParsesAndRoundTrips) {
  EXPECT_EQ(sched::parse_failure_mode("abort"), sched::FailureMode::abort);
  EXPECT_EQ(sched::parse_failure_mode("poison"), sched::FailureMode::poison);
  EXPECT_STREQ(sched::to_string(sched::FailureMode::poison), "poison");
  EXPECT_THROW(sched::parse_failure_mode("explode"), InvalidArgument);
}

TEST(OptionValidation, IoErrorsCarryStrerrorDetail) {
  try {
    (void)trace::load_trace("/nonexistent/dir/trace.txt");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("No such file or directory"),
              std::string::npos)
        << e.what();
  }
  try {
    (void)KernelModelSet::load("/nonexistent/dir/models.txt");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("No such file or directory"),
              std::string::npos);
  }
}

// ------------------------------------------------------------ TaskExecQueue

TEST(TaskExecQueueFaults, LeaveOfNonFrontTicket) {
  TaskExecQueue queue;
  const auto t1 = queue.enter(100.0);
  const auto t2 = queue.enter(200.0);
  const auto t3 = queue.enter(300.0);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_TRUE(queue.is_front(t1));

  queue.leave(t2);  // middle entry, never the front
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_TRUE(queue.is_front(t1));
  EXPECT_FALSE(queue.is_front(t3));

  queue.leave(t1);
  EXPECT_TRUE(queue.is_front(t3));
  queue.leave(t3);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(TaskExecQueueFaults, WaitersWakeInCompletionOrderUnderStalls) {
  TaskExecQueue queue;
  const auto front = queue.enter(100.0);
  std::atomic<int> next_rank{0};
  int rank_200 = -1, rank_300 = -1;

  std::thread waiter_300([&] {
    const auto t = queue.enter(300.0);
    queue.wait_front(t);
    rank_300 = next_rank.fetch_add(1);
    queue.leave(t);
  });
  std::thread waiter_200([&] {
    const auto t = queue.enter(200.0);
    queue.wait_front(t);
    rank_200 = next_rank.fetch_add(1);
    queue.leave(t);
  });

  // Injected stall: hold the front while both waiters are blocked, so the
  // wake-up order is decided purely by the queue's completion ordering.
  while (queue.size() < 3) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.leave(front);

  waiter_200.join();
  waiter_300.join();
  EXPECT_EQ(rank_200, 0);
  EXPECT_EQ(rank_300, 1);
}

TEST(TaskExecQueueFaults, CancelWakesBlockedWaitersWithSimulationStalled) {
  TaskExecQueue queue;
  const auto front = queue.enter(100.0);
  std::atomic<bool> threw{false};
  std::thread waiter([&] {
    const auto t = queue.enter(200.0);
    try {
      queue.wait_front(t);
    } catch (const SimulationStalled& e) {
      EXPECT_EQ(e.report(), "forced stall for test");
      threw = true;
    }
    queue.leave(t);
  });
  while (queue.size() < 2) std::this_thread::yield();

  queue.cancel("forced stall for test");
  waiter.join();
  EXPECT_TRUE(threw.load());
  EXPECT_THROW(queue.enter(300.0), SimulationStalled);

  queue.leave(front);
  queue.clear_cancel();
  const auto again = queue.enter(50.0);  // re-armed
  queue.leave(again);
}

// ----------------------------------------------------------------- Watchdog

TEST(WatchdogTest, FiresOnceWhenBeaconsFreezeWhileActive) {
  Watchdog dog;
  std::atomic<int> fired{0};
  StallReport seen;
  dog.add_beacon("frozen", [] { return std::uint64_t{7}; });
  dog.set_state_dump([] { return std::string("queue state here"); });
  dog.set_stall_handler([&](const StallReport& report) {
    seen = report;
    fired.fetch_add(1);
  });
  WatchdogOptions options;
  options.stall_timeout_us = 5'000.0;
  options.poll_interval_us = 1'000.0;
  dog.start(options);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!dog.stalled() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(dog.stalled());
  // Exactly once, even if we keep it running past another timeout window.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  dog.stop();
  EXPECT_EQ(fired.load(), 1);
  ASSERT_EQ(seen.beacons.size(), 1u);
  EXPECT_EQ(seen.beacons[0].name, "frozen");
  EXPECT_EQ(seen.beacons[0].value, 7u);
  EXPECT_GE(seen.stalled_for_us, 5'000.0);
  EXPECT_NE(seen.to_string().find("queue state here"), std::string::npos);
}

TEST(WatchdogTest, StaysQuietWhileBeaconsMove) {
  Watchdog dog;
  std::atomic<std::uint64_t> progress{0};
  dog.add_beacon("moving", [&] { return progress.fetch_add(1); });
  dog.set_stall_handler([](const StallReport&) { FAIL() << "spurious stall"; });
  WatchdogOptions options;
  options.stall_timeout_us = 5'000.0;
  options.poll_interval_us = 1'000.0;
  dog.start(options);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  dog.stop();
  EXPECT_FALSE(dog.stalled());
}

TEST(WatchdogTest, InactiveGateSuppressesStalls) {
  Watchdog dog;
  dog.add_beacon("frozen", [] { return std::uint64_t{1}; });
  dog.set_activity_gate([] { return false; });  // system idle
  dog.set_stall_handler([](const StallReport&) { FAIL() << "idle stall"; });
  WatchdogOptions options;
  options.stall_timeout_us = 3'000.0;
  options.poll_interval_us = 1'000.0;
  dog.start(options);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  dog.stop();
  EXPECT_FALSE(dog.stalled());
}

TEST(WatchdogTest, StartValidatesItsConfiguration) {
  Watchdog dog;
  WatchdogOptions options;
  options.stall_timeout_us = 1'000.0;
  EXPECT_THROW(dog.start(options), InvalidArgument);  // no beacons
  dog.add_beacon("b", [] { return std::uint64_t{0}; });
  options.stall_timeout_us = 0.0;
  EXPECT_THROW(dog.start(options), InvalidArgument);  // no timeout
}

// ----------------------------------------------- retry/poison in schedulers

class FaultSchedulerTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<sched::Runtime> make_rt(int workers,
                                          sched::RuntimeConfig config = {}) {
    config.workers = workers;
    return sched::make_runtime(GetParam(), config);
  }
};

INSTANTIATE_TEST_SUITE_P(AllSchedulers, FaultSchedulerTest,
                         ::testing::Values("quark", "starpu/dmda", "ompss/bf"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

TEST_P(FaultSchedulerTest, RetryWithBackoffHasExactVirtualCost) {
  // Serial chain of 4 constant-100us tasks; every 2nd submission fails its
  // first attempt with 50% progress, then succeeds on retry after a 50us
  // backoff.  Failing task cost: 0.5*100 (failed attempt) + 50 + 100
  // (backoff + full re-run) = 200us.  Makespan: 100+200+100+200 = 600us.
  const KernelModelSet models = constant_models(100.0);
  FaultPlanConfig fault_config;
  fault_config.rules["k"].fail_every_nth = 2;
  fault_config.rules["k"].progress_fraction = 0.5;
  fault_config.retry_backoff_us = 50.0;
  FaultPlan plan(fault_config);

  auto rt = make_rt(1);
  SimEngineOptions options;
  options.faults = &plan;
  SimEngine engine(models, options);
  SimSubmitter submitter(*rt, engine);
  double x;
  for (int i = 0; i < 4; ++i) {
    submitter.submit("k", nullptr, {sched::inout(&x)});
  }
  submitter.finish();

  EXPECT_DOUBLE_EQ(engine.virtual_time_us(), 600.0);
  EXPECT_EQ(rt->failed_attempt_count(), 2u);
  EXPECT_EQ(rt->retry_count(), 2u);
  EXPECT_TRUE(rt->poisoned_tasks().empty());
  EXPECT_EQ(engine.failed_attempts(), 2u);
}

TEST_P(FaultSchedulerTest, ExhaustedBudgetAbortsFromWaitAll) {
  const KernelModelSet models = constant_models(100.0);
  FaultPlanConfig fault_config;
  fault_config.rules["k"].fail_every_nth = 1;  // always fail first attempts
  FaultPlan plan(fault_config);

  sched::RuntimeConfig rc;
  rc.max_task_retries = 0;
  rc.failure_mode = sched::FailureMode::abort;
  auto rt = make_rt(2, rc);
  SimEngineOptions options;
  options.faults = &plan;
  SimEngine engine(models, options);
  SimSubmitter submitter(*rt, engine);
  double x;
  submitter.submit("k", nullptr, {sched::inout(&x)});
  try {
    submitter.finish();
    FAIL() << "expected TaskFailure";
  } catch (const TaskFailure& e) {
    EXPECT_EQ(e.attempt(), 0);
    EXPECT_NE(std::string(e.what()).find("retry budget"), std::string::npos);
  }
  EXPECT_EQ(rt->failed_attempt_count(), 1u);
  EXPECT_EQ(rt->retry_count(), 0u);
}

TEST_P(FaultSchedulerTest, PoisonModeSkipsTheSuccessorSubtree) {
  KernelModelSet models = constant_models(100.0);
  models.set_model("root", std::make_unique<stats::ConstantDist>(100.0));
  FaultPlanConfig fault_config;
  fault_config.rules["root"].fail_every_nth = 1;
  fault_config.rules["root"].progress_fraction = 0.5;
  FaultPlan plan(fault_config);

  sched::RuntimeConfig rc;
  rc.max_task_retries = 0;
  rc.failure_mode = sched::FailureMode::poison;
  auto rt = make_rt(2, rc);
  SimEngineOptions options;
  options.faults = &plan;
  SimEngine engine(models, options);
  SimSubmitter submitter(*rt, engine);

  // Diamond: root -> {a, b} -> sink; the root fails its only attempt.
  double x, y, z, w;
  const auto root = submitter.submit("root", nullptr, {sched::out(&x)});
  const auto a =
      submitter.submit("k", nullptr, {sched::in(&x), sched::out(&y)});
  const auto b =
      submitter.submit("k", nullptr, {sched::in(&x), sched::out(&z)});
  const auto sink = submitter.submit(
      "k", nullptr, {sched::in(&y), sched::in(&z), sched::out(&w)});
  submitter.finish();  // completes despite the poisoned subtree

  std::vector<sched::TaskId> poisoned = rt->poisoned_tasks();
  std::sort(poisoned.begin(), poisoned.end());
  EXPECT_EQ(poisoned, (std::vector<sched::TaskId>{root, a, b, sink}));
  EXPECT_EQ(rt->failed_attempt_count(), 1u);

  // The trace records the failed attempt and three zero-length skips.
  int failed = 0, skipped = 0;
  for (const auto& e : engine.trace().events()) {
    if (e.kernel == "root!failed") ++failed;
    if (e.kernel == "k!skipped") {
      ++skipped;
      EXPECT_DOUBLE_EQ(e.end_us, e.start_us);
    }
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(skipped, 3);
  // Only the failed attempt's partial progress reached the timeline.
  EXPECT_DOUBLE_EQ(engine.virtual_time_us(), 50.0);
}

TEST_P(FaultSchedulerTest, RandomDagRunsAreDeterministicWithAFixedSeed) {
  // One worker executes serially, so the virtual makespan is the sum of
  // the per-attempt spans — a fixed multiset under the plan.  The ready
  // pool can still be popped in different orders (the submitter races the
  // worker), which permutes the floating-point fold, so the makespan is
  // compared to a tolerance while the plan statistics must be exact.
  KernelModelSet models;
  models.set_model("k", std::make_unique<stats::UniformDist>(10.0, 200.0));

  auto run = [&](int workers) {
    FaultPlanConfig fault_config;
    fault_config.rules["*"].fail_probability = 0.2;
    fault_config.rules["*"].progress_fraction = 0.5;
    FaultPlan plan(fault_config);
    sched::RuntimeConfig rc;
    rc.max_task_retries = 1;
    rc.failure_mode = sched::FailureMode::poison;
    auto rt = make_rt(workers, rc);
    SimEngineOptions options;
    options.faults = &plan;
    SimEngine engine(models, options);
    SimSubmitter submitter(*rt, engine);
    Rng rng(23);
    double objects[5];
    for (int t = 0; t < 60; ++t) {
      sched::AccessList accesses;
      const int nrefs = 1 + static_cast<int>(rng.uniform_index(2));
      for (int r = 0; r < nrefs; ++r) {
        const std::size_t obj = rng.uniform_index(5);
        accesses.push_back(rng.uniform() < 0.4 ? sched::inout(&objects[obj])
                                               : sched::in(&objects[obj]));
      }
      submitter.submit("k", nullptr, std::move(accesses));
    }
    submitter.finish();
    std::vector<sched::TaskId> poisoned = rt->poisoned_tasks();
    std::sort(poisoned.begin(), poisoned.end());
    return std::make_tuple(rt->failed_attempt_count(), rt->retry_count(),
                           poisoned, engine.virtual_time_us());
  };

  const auto first = run(1);
  const auto second = run(1);
  EXPECT_GT(std::get<0>(first), 0u);  // the plan actually fired
  EXPECT_EQ(std::get<0>(first), std::get<0>(second));
  EXPECT_EQ(std::get<1>(first), std::get<1>(second));
  EXPECT_EQ(std::get<2>(first), std::get<2>(second));
  EXPECT_NEAR(std::get<3>(first), std::get<3>(second),
              1e-6 * std::get<3>(first));

  // Multiple workers: lane assignment may shift the makespan, but the
  // plan's decisions are pure hashes of (seed, kernel, ordinal) — the
  // fault statistics must not change.
  const auto par_one = run(3);
  const auto par_two = run(3);
  EXPECT_EQ(std::get<0>(par_one), std::get<0>(par_two));
  EXPECT_EQ(std::get<1>(par_one), std::get<1>(par_two));
  EXPECT_EQ(std::get<2>(par_one), std::get<2>(par_two));
  EXPECT_EQ(std::get<0>(par_one), std::get<0>(first));
}

TEST_P(FaultSchedulerTest, RetriedRunsPassStreamValidationAndRaceAudit) {
  const KernelModelSet models = constant_models(100.0);
  FaultPlanConfig fault_config;
  fault_config.rules["k"].fail_every_nth = 2;
  fault_config.rules["k"].progress_fraction = 0.5;
  FaultPlan plan(fault_config);

  auto rt = make_rt(2);
  SimEngineOptions options;
  options.faults = &plan;
  SimEngine engine(models, options);
  SimSubmitter submitter(*rt, engine);

  flightrec::FlightRecorder& recorder = flightrec::FlightRecorder::global();
  recorder.enable(1 << 14);
  double x;
  for (int i = 0; i < 8; ++i) {
    submitter.submit("k", nullptr, {sched::inout(&x)});
  }
  submitter.finish();
  recorder.disable();
  flightrec::Stream stream = recorder.drain();

  // Retried tasks still reach exactly one terminal state each.
  const std::vector<std::string> violations =
      trace::validate_stream(stream);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: " << violations.front();

  trace::LifecycleLog log = trace::build_lifecycle(std::move(stream));
  log.worker_lanes = 2;
  EXPECT_EQ(log.failed_attempts, 4u);
  EXPECT_EQ(log.retries, 4u);
  EXPECT_EQ(log.poisoned, 0u);
  // One TEQ span per attempt: 8 final + 4 failed.
  EXPECT_EQ(log.attempts.size(), 12u);
  for (const auto& [id, lc] : log.tasks) {
    EXPECT_FALSE(lc.poisoned);
  }

  // A retried task's final attempt is pinned by its own failed attempt:
  // the auditor must not read that as an inflated start.
  const trace::RaceAudit audit = trace::audit_races(log);
  EXPECT_TRUE(audit.violations.empty()) << audit.to_string();
}

// ------------------------------------------------------- engine-level paths

TEST(SimEngineFaults, PoisonedFastPathSkipsClockAndQueue) {
  const KernelModelSet models = constant_models(100.0);
  SimEngine engine(models);
  sched::TaskContext ctx;
  ctx.id = 5;
  ctx.worker = 0;
  ctx.poisoned = true;
  EXPECT_DOUBLE_EQ(engine.execute(ctx, "k"), 0.0);
  EXPECT_DOUBLE_EQ(engine.virtual_time_us(), 0.0);
  ASSERT_EQ(engine.trace().events().size(), 1u);
  EXPECT_EQ(engine.trace().events()[0].kernel, "k!skipped");
  EXPECT_EQ(engine.executed_tasks(), 0u);
}

TEST(SimEngineFaults, QuiescenceTimeoutIsRecordedWithTaskAndTimestamps) {
  const KernelModelSet models = constant_models(100.0);
  sched::RuntimeConfig rc;
  rc.workers = 2;
  auto rt = sched::make_runtime("quark", rc);

  SimEngineOptions options;
  options.mitigation = RaceMitigation::quiescence;
  options.quiescence_timeout_us = 500.0;
  SimEngine engine(models, options);
  // Submission open and the submitter not window-blocked: the quiescence
  // predicate cannot be satisfied, so the wait must time out.
  engine.set_submission_open(true);

  flightrec::FlightRecorder& recorder = flightrec::FlightRecorder::global();
  recorder.enable(1 << 12);
  sched::TaskContext ctx;
  ctx.id = 7;
  ctx.worker = 0;
  ctx.runtime = rt.get();
  engine.execute(ctx, "k");
  recorder.disable();

  EXPECT_EQ(engine.quiescence_timeouts(), 1u);
  const flightrec::Stream stream = recorder.drain();
  bool found = false;
  for (const auto& e : stream.events) {
    if (e.type == flightrec::EventType::quiescence_timeout) {
      found = true;
      EXPECT_EQ(e.task, 7u);
      EXPECT_DOUBLE_EQ(e.a, 100.0);  // virtual completion waited for
      EXPECT_GE(e.b, 500.0);         // wall microseconds waited
    }
  }
  EXPECT_TRUE(found);
}

TEST(SimEngineFaults, WatchdogConvertsForcedDeadlockIntoTypedError) {
  const KernelModelSet models = constant_models(100.0);
  SimEngineOptions options;
  options.mitigation = RaceMitigation::none;
  options.watchdog_timeout_us = 20'000.0;  // 20 ms
  options.watchdog_poll_us = 2'000.0;
  SimEngine engine(models, options);
  // Submission open with no simulated task ever arriving: every beacon
  // freezes while the activity gate reports outstanding work.
  engine.set_submission_open(true);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!engine.stalled() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(engine.stalled());

  sched::TaskContext ctx;
  ctx.id = 1;
  EXPECT_THROW(engine.execute(ctx, "k"), SimulationStalled);

  engine.set_submission_open(false);
  engine.reset();  // re-arms the cancelled queue
  EXPECT_FALSE(engine.stalled());
}

TEST(SimEngineFaults, InjectedWorkerStallAbortsViaWatchdogNotCtestTimeout) {
  // A task stalls (real time) far longer than the watchdog timeout while
  // the rest of the system drains: the watchdog must cancel the run and
  // wait_all must rethrow SimulationStalled instead of hanging.
  KernelModelSet models = constant_models(100.0);
  models.set_model("stall", std::make_unique<stats::ConstantDist>(100.0));
  FaultPlanConfig fault_config;
  fault_config.rules["stall"].stall_us = 60e6;  // 60 s, interruptible
  fault_config.rules["stall"].stall_probability = 1.0;
  FaultPlan plan(fault_config);

  sched::RuntimeConfig rc;
  rc.workers = 2;
  auto rt = sched::make_runtime("quark", rc);
  SimEngineOptions options;
  options.mitigation = RaceMitigation::none;
  options.faults = &plan;
  options.watchdog_timeout_us = 100'000.0;  // 100 ms
  options.watchdog_poll_us = 5'000.0;
  SimEngine engine(models, options);
  SimSubmitter submitter(*rt, engine);

  double a, b;
  submitter.submit("k", nullptr, {sched::inout(&a)});
  submitter.submit("k", nullptr, {sched::inout(&a)});
  submitter.submit("stall", nullptr, {sched::inout(&b)});
  EXPECT_THROW(submitter.finish(), SimulationStalled);
  EXPECT_TRUE(engine.stalled());
}

// -------------------------------------------------------- harness plumbing

TEST(HarnessFaults, RunSimulatedReportsFaultStatisticsAndLifecycle) {
  sim::KernelModelSet models;
  for (const char* kernel : {"dpotrf", "dtrsm", "dsyrk", "dgemm"}) {
    models.set_model(kernel, std::make_unique<stats::ConstantDist>(100.0));
  }
  harness::ExperimentConfig config;
  config.scheduler = "quark";
  config.algorithm = harness::Algorithm::cholesky;
  config.n = 288;
  config.nb = 96;
  config.workers = 2;
  config.failure_mode = sched::FailureMode::poison;
  config.record_lifecycle = true;
  sim::FaultPlanConfig faults;
  faults.rules["*"].fail_probability = 0.3;
  config.faults = faults;

  const harness::RunResult result = harness::run_simulated(config, models);
  EXPECT_GT(result.failed_attempts, 0u);
  EXPECT_EQ(result.retries, result.failed_attempts);  // budget never hit
  EXPECT_TRUE(result.poisoned.empty());
  ASSERT_NE(result.lifecycle, nullptr);
  EXPECT_EQ(result.lifecycle->failed_attempts, result.failed_attempts);
  EXPECT_EQ(result.lifecycle->retries, result.retries);

  const harness::RunResult rerun = harness::run_simulated(config, models);
  EXPECT_EQ(rerun.failed_attempts, result.failed_attempts);
  EXPECT_EQ(rerun.retries, result.retries);
  EXPECT_EQ(rerun.poisoned, result.poisoned);
}

}  // namespace
}  // namespace tasksim::sim
