// Tests for bounded-lookahead out-of-order completion (DESIGN.md §11):
// conservative releases must be invisible next to the serialized oracle
// (identical virtual makespan, zero §V-E audit findings), lookahead 0 must
// reproduce the serialized trace exactly, optimistic speculation must be
// detected by the audit and undone by the repair pass, and cancelled TEQ
// waiters must leave a distinct teq_cancelled flight event.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sched/factory.hpp"
#include "sim/kernel_model.hpp"
#include "sim/lookahead.hpp"
#include "sim/sim_engine.hpp"
#include "sim/sim_submitter.hpp"
#include "sim/task_exec_queue.hpp"
#include "stats/distribution.hpp"
#include "support/error.hpp"
#include "support/flight_recorder.hpp"
#include "support/rng.hpp"
#include "trace/lifecycle.hpp"

namespace tasksim::sim {
namespace {

// Distinct constants per kernel class: durations are a pure function of
// the kernel, so two runs of one DAG sample identical durations whatever
// the thread interleaving (a shared-RNG model would not).
KernelModelSet distinct_constant_models() {
  KernelModelSet models;
  models.set_model("k0", std::make_unique<stats::ConstantDist>(70.0));
  models.set_model("k1", std::make_unique<stats::ConstantDist>(110.0));
  models.set_model("k2", std::make_unique<stats::ConstantDist>(90.0));
  models.set_model("k3", std::make_unique<stats::ConstantDist>(50.0));
  return models;
}

struct LookaheadRun {
  double makespan_us = 0.0;
  std::uint64_t releases = 0;
  std::uint64_t tasks = 0;
  std::size_t audit_findings = 0;
  std::string audit_text;
  std::vector<trace::TraceEvent> events;
};

/// Run a randomized DAG (fixed seed => fixed structure) over `objects`
/// tiles on `workers` workers.  Every task writes exactly one object, so
/// the DAG's parallelism never exceeds `objects` — pick objects <= workers
/// for the oracle-exactness property.
LookaheadRun run_random_dag(const std::string& scheduler, int workers,
                            int objects, int tasks, LookaheadMode mode,
                            double lookahead_us) {
  const KernelModelSet models = distinct_constant_models();
  sched::RuntimeConfig rc;
  rc.workers = workers;
  auto rt = sched::make_runtime(scheduler, rc);
  SimEngineOptions options;
  options.lookahead_mode = mode;
  options.lookahead_us = lookahead_us;
  SimEngine engine(models, options);
  SimSubmitter submitter(*rt, engine);

  flightrec::FlightRecorder& recorder = flightrec::FlightRecorder::global();
  recorder.enable(1 << 15);

  Rng rng(37);
  std::vector<double> tiles(static_cast<std::size_t>(objects));
  for (int t = 0; t < tasks; ++t) {
    const std::size_t own = rng.uniform_index(tiles.size());
    sched::AccessList accesses{sched::inout(&tiles[own])};
    if (rng.uniform() < 0.5) {
      const std::size_t other = rng.uniform_index(tiles.size());
      if (other != own) accesses.push_back(sched::in(&tiles[other]));
    }
    const std::string kernel = "k" + std::to_string(rng.uniform_index(4));
    submitter.submit(kernel, nullptr, std::move(accesses));
  }
  submitter.finish();
  recorder.disable();

  LookaheadRun result;
  result.makespan_us = engine.virtual_time_us();
  result.releases = engine.released_tasks();
  result.tasks = engine.executed_tasks();
  result.events = engine.trace().sorted_events();
  trace::LifecycleLog log = trace::build_lifecycle(recorder.drain());
  log.worker_lanes = workers;
  const trace::RaceAudit audit = trace::audit_races(log);
  result.audit_findings = audit.violations.size();
  result.audit_text = audit.to_string();
  return result;
}

class LookaheadSchedulerTest : public ::testing::TestWithParam<std::string> {
};

INSTANTIATE_TEST_SUITE_P(AllSchedulers, LookaheadSchedulerTest,
                         ::testing::Values("quark", "starpu/dmda", "ompss/bf"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

TEST(LookaheadMode, ParsesAndPrints) {
  EXPECT_EQ(parse_lookahead_mode("off"), LookaheadMode::off);
  EXPECT_EQ(parse_lookahead_mode("conservative"), LookaheadMode::conservative);
  EXPECT_EQ(parse_lookahead_mode("optimistic"), LookaheadMode::optimistic);
  EXPECT_STREQ(to_string(LookaheadMode::conservative), "conservative");
  EXPECT_THROW(parse_lookahead_mode("eager"), InvalidArgument);
}

TEST_P(LookaheadSchedulerTest, ConservativeMatchesSerializedOracle) {
  // Parallelism bounded by the object count (4) <= workers (8): when every
  // ready task is claimed promptly, the serialized oracle's starts are
  // exactly the producer floors the lookahead engine uses and the virtual
  // makespans agree to the last bit-fold.  "Promptly" is a wall-clock race
  // the scheduler can lose in either run (dmda may queue a ready task
  // behind a busy lane while another idles, delaying its virtual start
  // past the producer floor), so retry the pair; the unconditional
  // invariants — task count and a clean §V-E audit — must hold on *every*
  // attempt, matched or not.
  bool matched = false;
  for (int attempt = 0; attempt < 10 && !matched; ++attempt) {
    const LookaheadRun oracle =
        run_random_dag(GetParam(), 8, 4, 80, LookaheadMode::off, 0.0);
    const LookaheadRun lookahead = run_random_dag(
        GetParam(), 8, 4, 80, LookaheadMode::conservative, 120.0);
    ASSERT_EQ(oracle.tasks, 80u);
    ASSERT_EQ(lookahead.tasks, 80u);
    ASSERT_EQ(oracle.audit_findings, 0u) << oracle.audit_text;
    ASSERT_EQ(lookahead.audit_findings, 0u) << lookahead.audit_text;
    matched = std::abs(lookahead.makespan_us - oracle.makespan_us) <=
              1e-9 * oracle.makespan_us;
  }
  EXPECT_TRUE(matched)
      << "conservative lookahead never reproduced the serialized oracle "
         "makespan in 10 attempts of a prompt-claim DAG";
}

TEST_P(LookaheadSchedulerTest, ConservativeAuditCleanWhenOversubscribed) {
  // Parallelism (6 objects) above the worker count (2): oracle exactness
  // is no longer guaranteed (released workers may claim backlog tasks in a
  // different order), but the deferred in-order commit must keep the
  // virtual timeline §V-E-clean regardless.
  const LookaheadRun lookahead = run_random_dag(
      GetParam(), 2, 6, 60, LookaheadMode::conservative, 200.0);
  EXPECT_EQ(lookahead.tasks, 60u);
  EXPECT_EQ(lookahead.audit_findings, 0u) << lookahead.audit_text;
}

TEST_P(LookaheadSchedulerTest, LookaheadZeroReproducesSerializedTrace) {
  // lookahead_us == 0 must degenerate to the strict engine bit for bit.
  // A single object makes the DAG a pure serial chain, so the schedule is
  // forced by dependencies alone (with independent tasks, claim order is a
  // race between the submitter and the worker even on one lane, and two
  // separate runs need not produce the same trace).  The whole trace —
  // order, workers, starts, ends — must match the oracle's.
  const LookaheadRun oracle =
      run_random_dag(GetParam(), 1, 1, 50, LookaheadMode::off, 0.0);
  const LookaheadRun degenerate =
      run_random_dag(GetParam(), 1, 1, 50, LookaheadMode::conservative, 0.0);

  EXPECT_EQ(degenerate.releases, 0u);
  ASSERT_EQ(degenerate.events.size(), oracle.events.size());
  for (std::size_t i = 0; i < oracle.events.size(); ++i) {
    const trace::TraceEvent& a = oracle.events[i];
    const trace::TraceEvent& b = degenerate.events[i];
    EXPECT_EQ(b.task_id, a.task_id) << "event " << i;
    EXPECT_EQ(b.kernel, a.kernel) << "event " << i;
    EXPECT_EQ(b.worker, a.worker) << "event " << i;
    EXPECT_DOUBLE_EQ(b.start_us, a.start_us) << "event " << i;
    EXPECT_DOUBLE_EQ(b.end_us, a.end_us) << "event " << i;
  }
}

// One long task plus two interleaved serial chains on three workers.  The
// chains' completions alternate at the queue front, so at any instant one
// chain's waiter is displaced; once submission closes, that waiter's grant
// gate sees a quiescent state (ready == 0, live == running, no
// bookkeeping) *on its own timeslice* — the release needs no cross-thread
// timing luck, which matters on single-CPU CI where a thread parked behind
// a hot worker may never observe the drain in flight.  The long task
// (completion 1e6, the queue maximum throughout) additionally speculates
// in optimistic mode, inflating every later chain start past 1e6.
struct ChainScenario {
  double makespan_us = 0.0;
  std::uint64_t releases = 0;
  std::size_t backward_returns = 0;
  RepairReport repair;
};

ChainScenario run_chain(LookaheadMode mode, double lookahead_us) {
  KernelModelSet models;
  models.set_model("long", std::make_unique<stats::ConstantDist>(1e6));
  models.set_model("b", std::make_unique<stats::ConstantDist>(10.0));
  models.set_model("c", std::make_unique<stats::ConstantDist>(11.0));
  sched::RuntimeConfig rc;
  rc.workers = 3;
  auto rt = sched::make_runtime("quark", rc);
  SimEngineOptions options;
  options.lookahead_mode = mode;
  options.lookahead_us = lookahead_us;
  SimEngine engine(models, options);
  SimSubmitter submitter(*rt, engine);

  flightrec::FlightRecorder& recorder = flightrec::FlightRecorder::global();
  recorder.enable(1 << 14);
  double lone, bchain, cchain;
  submitter.submit("long", nullptr, {sched::inout(&lone)});
  // Give the long task's worker wall time to claim it and enter the queue
  // before any chain task exists, so it is displaced (not merely late).
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  for (int i = 0; i < 150; ++i) {
    submitter.submit("b", nullptr, {sched::inout(&bchain)});
    submitter.submit("c", nullptr, {sched::inout(&cchain)});
  }
  submitter.finish();
  recorder.disable();

  ChainScenario result;
  result.makespan_us = engine.virtual_time_us();
  result.releases = engine.released_tasks();
  trace::LifecycleLog log = trace::build_lifecycle(recorder.drain());
  log.worker_lanes = 3;
  const trace::RaceAudit audit = trace::audit_races(log);
  for (const trace::RaceViolation& v : audit.violations) {
    if (v.kind == trace::RaceViolation::Kind::backward_return) {
      ++result.backward_returns;
    }
  }
  result.repair = repair_virtual_trace(log, audit);
  return result;
}

TEST(Lookahead, ConservativeReleasesADisplacedWaiter) {
  // Strict baseline: nothing may release, and the makespan is the long
  // task's completion (chains end at 1500/1650, far below 1e6).
  const ChainScenario strict = run_chain(LookaheadMode::off, 0.0);
  EXPECT_EQ(strict.releases, 0u);
  EXPECT_DOUBLE_EQ(strict.makespan_us, 1e6);

  // With the horizon spanning the whole run, every post-close quiescent
  // window in which one chain's waiter sits behind the other chain's front
  // is a conservative grant.  Whether a given run hits such a window is
  // still interleaving-dependent, so retry; the timeline invariants must
  // hold on *every* attempt, released or not.
  bool saw_release = false;
  for (int attempt = 0; attempt < 10 && !saw_release; ++attempt) {
    const ChainScenario released =
        run_chain(LookaheadMode::conservative, 2e6);
    ASSERT_EQ(released.backward_returns, 0u);
    ASSERT_DOUBLE_EQ(released.makespan_us, strict.makespan_us);
    saw_release = released.releases >= 1;
  }
  EXPECT_TRUE(saw_release)
      << "no conservative release in 10 attempts of a scenario built to "
         "release displaced chain waiters";
}

TEST(Lookahead, OptimisticMisorderingIsDetectedAndRepaired) {
  // Optimistic mode releases any displaced waiter immediately, out of
  // completion order: a chain waiter committing past the other chain's
  // front yields §V-E backward returns, and the long task's speculative
  // commit jumps the clock to 1e6 so every chain task claimed afterwards
  // starts inflated.  The repair pass replays the recorded dependency
  // chains and recovers the serialized makespan exactly.  Which of those
  // speculations fire in a given run is interleaving-dependent: retry
  // until one run shows both, then hold it to the audit + repair contract.
  bool saw_speculation = false;
  for (int attempt = 0; attempt < 10 && !saw_speculation; ++attempt) {
    const ChainScenario speculative =
        run_chain(LookaheadMode::optimistic, 2e6);
    if (speculative.releases == 0) {
      ASSERT_EQ(speculative.backward_returns, 0u);
      continue;  // legal serialized interleaving; speculate again
    }
    EXPECT_EQ(speculative.repair.unrepaired, 0u);
    if (speculative.backward_returns == 0 ||
        speculative.repair.observed_makespan_us <= 1e6) {
      continue;  // released, but without the full misordering signature
    }
    saw_speculation = true;
    // The audit may flag late submissions on top of the backward returns
    // (the speculative clock jump races the submission stream), but every
    // backward return must be among the findings.
    EXPECT_GE(speculative.repair.violations, speculative.backward_returns);
    EXPECT_DOUBLE_EQ(speculative.repair.repaired_makespan_us, 1e6);
    // Speculation inflated the observed timeline (chain tasks claimed
    // after the long task's commit start at clock 1e6); repair undoes it.
    EXPECT_GT(speculative.repair.observed_makespan_us, 1e6);
    EXPECT_LT(speculative.repair.repaired_makespan_us,
              speculative.repair.observed_makespan_us);
  }
  EXPECT_TRUE(saw_speculation)
      << "no optimistic misordering in 10 attempts of a scenario built to "
         "speculate the long task past both chains";
}

TEST(Lookahead, RepairIsAFixedPointOnCleanTraces) {
  const ChainScenario strict = run_chain(LookaheadMode::off, 0.0);
  EXPECT_EQ(strict.backward_returns, 0u);
  EXPECT_EQ(strict.repair.violations, 0u);
  EXPECT_EQ(strict.repair.unrepaired, 0u);
  EXPECT_DOUBLE_EQ(strict.repair.repaired_makespan_us,
                   strict.repair.observed_makespan_us);
}

TEST(TaskExecQueue, CancelledWaiterRecordsDistinctFlightEvent) {
  flightrec::FlightRecorder& recorder = flightrec::FlightRecorder::global();
  recorder.enable(1 << 10);
  TaskExecQueue queue;
  const TaskExecQueue::Ticket front = queue.enter(1.0);
  const TaskExecQueue::Ticket blocked = queue.enter(2.0);

  std::thread waiter([&] {
    EXPECT_THROW(queue.wait_front(blocked), SimulationStalled);
  });
  // Let the waiter park, then cancel: it must unwind with a teq_cancelled
  // event carrying its ticket seq, distinct from any normal return.  (If
  // the cancel wins the race the waiter takes the fast cancelled path —
  // the event is recorded either way.)
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  queue.cancel("test cancellation");
  waiter.join();
  // A post-cancel wait (not parked) records the event too.
  EXPECT_THROW(queue.wait_front(front), SimulationStalled);
  recorder.disable();

  const flightrec::Stream stream = recorder.drain();
  std::vector<std::uint64_t> cancelled_seqs;
  for (const flightrec::Event& event : stream.events) {
    if (event.type == flightrec::EventType::teq_cancelled) {
      cancelled_seqs.push_back(event.other);
    }
  }
  ASSERT_EQ(cancelled_seqs.size(), 2u);
  EXPECT_TRUE(std::count(cancelled_seqs.begin(), cancelled_seqs.end(),
                         blocked.seq));
  EXPECT_TRUE(std::count(cancelled_seqs.begin(), cancelled_seqs.end(),
                         front.seq));
}

}  // namespace
}  // namespace tasksim::sim
