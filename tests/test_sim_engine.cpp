// Tests for the simulation engine: virtual-time semantics, trace
// correctness, race mitigations, submission gating (paper §V).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/factory.hpp"
#include "sched/observers.hpp"
#include "sim/sim_engine.hpp"
#include "sim/sim_submitter.hpp"
#include "stats/distribution.hpp"
#include "support/error.hpp"

namespace tasksim::sim {
namespace {

KernelModelSet constant_models(double duration_us) {
  KernelModelSet models;
  models.set_model("k", std::make_unique<stats::ConstantDist>(duration_us));
  return models;
}

class SimEngineTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<sched::Runtime> make_rt(int workers) {
    sched::RuntimeConfig config;
    config.workers = workers;
    return sched::make_runtime(GetParam(), config);
  }
};

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SimEngineTest,
                         ::testing::Values("quark", "starpu/eager",
                                           "starpu/dmda", "ompss/bf"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

TEST_P(SimEngineTest, SerialChainSumsDurations) {
  const KernelModelSet models = constant_models(100.0);
  auto rt = make_rt(3);
  SimEngine engine(models);
  SimSubmitter submitter(*rt, engine);
  double x;
  for (int i = 0; i < 10; ++i) {
    submitter.submit("k", nullptr, {sched::inout(&x)});
  }
  submitter.finish();
  EXPECT_DOUBLE_EQ(engine.trace().makespan_us(), 1000.0);
  EXPECT_DOUBLE_EQ(engine.virtual_time_us(), 1000.0);
  EXPECT_EQ(engine.executed_tasks(), 10u);
}

TEST_P(SimEngineTest, IndependentTasksPackAcrossWorkers) {
  const KernelModelSet models = constant_models(100.0);
  auto rt = make_rt(4);
  SimEngine engine(models);
  SimSubmitter submitter(*rt, engine);
  double slots[8];
  for (int i = 0; i < 8; ++i) {
    submitter.submit("k", nullptr, {sched::inout(&slots[i])});
  }
  submitter.finish();
  // 8 equal tasks on 4 virtual workers: exactly two waves.
  EXPECT_DOUBLE_EQ(engine.trace().makespan_us(), 200.0);
}

TEST_P(SimEngineTest, ForkJoinCriticalPath) {
  const KernelModelSet models = constant_models(50.0);
  auto rt = make_rt(4);
  SimEngine engine(models);
  SimSubmitter submitter(*rt, engine);
  double root, a, b, joined;
  submitter.submit("k", nullptr, {sched::out(&root)});
  submitter.submit("k", nullptr, {sched::in(&root), sched::out(&a)});
  submitter.submit("k", nullptr, {sched::in(&root), sched::out(&b)});
  submitter.submit("k", nullptr,
                   {sched::in(&a), sched::in(&b), sched::out(&joined)});
  submitter.finish();
  EXPECT_DOUBLE_EQ(engine.trace().makespan_us(), 150.0);
}

TEST_P(SimEngineTest, TraceRespectsAllDependences) {
  // Random dependence structure; afterwards assert that in the virtual
  // trace no task starts before every predecessor's end (predecessors
  // recomputed via DagCaptureObserver).
  KernelModelSet models;
  models.set_model("k", std::make_unique<stats::UniformDist>(10.0, 200.0));
  auto rt = make_rt(4);
  sched::DagCaptureObserver capture;
  rt->add_observer(&capture);
  SimEngine engine(models);
  SimSubmitter submitter(*rt, engine);

  Rng rng(17);
  double objects[6];
  for (int t = 0; t < 120; ++t) {
    sched::AccessList accesses;
    const int nrefs = 1 + static_cast<int>(rng.uniform_index(2));
    for (int r = 0; r < nrefs; ++r) {
      const std::size_t obj = rng.uniform_index(6);
      accesses.push_back(rng.uniform() < 0.4 ? sched::inout(&objects[obj])
                                             : sched::in(&objects[obj]));
    }
    submitter.submit("k", nullptr, std::move(accesses));
  }
  submitter.finish();
  rt->remove_observer(&capture);

  const auto events = engine.trace().events();
  ASSERT_EQ(events.size(), 120u);
  std::vector<double> start(120), end(120);
  for (const auto& e : events) {
    start[e.task_id] = e.start_us;
    end[e.task_id] = e.end_us;
  }
  for (const auto& edge : capture.graph().edges()) {
    EXPECT_GE(start[edge.to] + 1e-9, end[edge.from])
        << "task " << edge.to << " started before its "
        << dag::to_string(edge.kind) << " predecessor " << edge.from;
  }
}

TEST_P(SimEngineTest, WorkerLanesNeverOverlapInVirtualTime) {
  KernelModelSet models;
  models.set_model("k", std::make_unique<stats::UniformDist>(5.0, 50.0));
  auto rt = make_rt(3);
  SimEngine engine(models);
  SimSubmitter submitter(*rt, engine);
  double slots[9];
  for (int i = 0; i < 60; ++i) {
    submitter.submit("k", nullptr, {sched::inout(&slots[i % 9])});
  }
  submitter.finish();

  // Within one worker lane, events must not overlap.
  std::map<int, std::vector<std::pair<double, double>>> lanes;
  for (const auto& e : engine.trace().events()) {
    lanes[e.worker].emplace_back(e.start_us, e.end_us);
  }
  for (auto& [worker, intervals] : lanes) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first + 1e-9, intervals[i - 1].second)
          << "worker " << worker;
    }
  }
}

TEST_P(SimEngineTest, ReturnOrderMatchesVirtualCompletionOrder) {
  // The Task Execution Queue invariant (paper §V-C): recording order in the
  // trace equals nondecreasing virtual completion order.
  KernelModelSet models;
  models.set_model("k", std::make_unique<stats::UniformDist>(10.0, 500.0));
  auto rt = make_rt(4);
  SimEngine engine(models);
  SimSubmitter submitter(*rt, engine);
  double slots[8];
  for (int i = 0; i < 64; ++i) {
    submitter.submit("k", nullptr, {sched::inout(&slots[i % 8])});
  }
  submitter.finish();
  const auto events = engine.trace().events();  // recording order
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].end_us, events[i].end_us + 1e-9);
  }
}

TEST_P(SimEngineTest, ResetAllowsReuse) {
  const KernelModelSet models = constant_models(10.0);
  auto rt = make_rt(2);
  SimEngine engine(models);
  SimSubmitter submitter(*rt, engine);
  double x;
  submitter.submit("k", nullptr, {sched::inout(&x)});
  submitter.finish();
  EXPECT_EQ(engine.executed_tasks(), 1u);
  engine.reset();
  EXPECT_EQ(engine.executed_tasks(), 0u);
  EXPECT_DOUBLE_EQ(engine.virtual_time_us(), 0.0);
  EXPECT_TRUE(engine.trace().empty());
  submitter.submit("k", nullptr, {sched::inout(&x)});
  submitter.finish();
  EXPECT_EQ(engine.executed_tasks(), 1u);
}

class MitigationTest : public ::testing::TestWithParam<RaceMitigation> {};

INSTANTIATE_TEST_SUITE_P(AllModes, MitigationTest,
                         ::testing::Values(RaceMitigation::none,
                                           RaceMitigation::yield_sleep,
                                           RaceMitigation::quiescence),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(MitigationTest, CompletesAndKeepsDurations) {
  // Every mitigation must terminate and preserve per-task durations; only
  // the *placement* differs (the ablation bench quantifies that).
  KernelModelSet models = constant_models(25.0);
  sched::RuntimeConfig config;
  config.workers = 3;
  auto rt = sched::make_runtime("quark", config);
  SimEngineOptions options;
  options.mitigation = GetParam();
  options.sleep_us = 20.0;
  SimEngine engine(models, options);
  SimSubmitter submitter(*rt, engine);
  double slots[4];
  for (int i = 0; i < 40; ++i) {
    submitter.submit("k", nullptr, {sched::inout(&slots[i % 4])});
  }
  submitter.finish();
  EXPECT_EQ(engine.executed_tasks(), 40u);
  for (const auto& e : engine.trace().events()) {
    EXPECT_DOUBLE_EQ(e.duration_us(), 25.0);
  }
  // Each of the 4 chains is serialized: makespan >= 10 tasks * 25us.
  EXPECT_GE(engine.trace().makespan_us(), 250.0 - 1e-9);
}

TEST(SimEngine, MitigationParseRoundTrip) {
  for (RaceMitigation m : {RaceMitigation::none, RaceMitigation::yield_sleep,
                           RaceMitigation::quiescence}) {
    EXPECT_EQ(parse_race_mitigation(to_string(m)), m);
  }
  EXPECT_THROW(parse_race_mitigation("hope"), InvalidArgument);
}

TEST(SimEngine, MitigationParseAcceptsAliases) {
  // Regression: "yield" (the name the paper's prose uses for the fallback
  // mitigation) was rejected even though "sleep" was accepted.
  EXPECT_EQ(parse_race_mitigation("yield"), RaceMitigation::yield_sleep);
  EXPECT_EQ(parse_race_mitigation("sleep"), RaceMitigation::yield_sleep);
}

TEST(SimEngine, MitigationParseErrorEnumeratesOptions) {
  // The error must tell the user what *would* have worked.
  try {
    parse_race_mitigation("hope");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'hope'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("none"), std::string::npos) << msg;
    EXPECT_NE(msg.find("yield_sleep"), std::string::npos) << msg;
    EXPECT_NE(msg.find("quiescence"), std::string::npos) << msg;
  }
}

TEST(SimEngine, MinDurationClampsDegenerateModels) {
  KernelModelSet models;
  models.set_model("k", std::make_unique<stats::NormalDist>(-50.0, 1.0));
  sched::RuntimeConfig config;
  config.workers = 1;
  auto rt = sched::make_runtime("quark", config);
  SimEngineOptions options;
  options.min_duration_us = 2.0;
  SimEngine engine(models, options);
  SimSubmitter submitter(*rt, engine);
  double x;
  for (int i = 0; i < 5; ++i) {
    submitter.submit("k", nullptr, {sched::inout(&x)});
  }
  submitter.finish();
  for (const auto& e : engine.trace().events()) {
    EXPECT_DOUBLE_EQ(e.duration_us(), 2.0);
  }
}

TEST(SimEngine, ResetRejectedWhileTasksInFlight) {
  // Covered indirectly: reset after finish works (see ResetAllowsReuse);
  // here verify the guard exists by checking queue emptiness is enforced.
  KernelModelSet models = constant_models(1.0);
  SimEngine engine(models);
  EXPECT_NO_THROW(engine.reset());
}

TEST(SimEngine, SubmissionGateToggles) {
  KernelModelSet models = constant_models(1.0);
  SimEngine engine(models);
  EXPECT_FALSE(engine.submission_open());
  engine.set_submission_open(true);
  EXPECT_TRUE(engine.submission_open());
  engine.set_submission_open(false);
  EXPECT_FALSE(engine.submission_open());
}

TEST(SimEngine, WindowedSubmissionDoesNotDeadlock) {
  // The submitter blocks on the window while simulated tasks must keep
  // returning: the quiescence predicate's submitter_waiting escape hatch.
  KernelModelSet models = constant_models(10.0);
  sched::RuntimeConfig config;
  config.workers = 2;
  config.window_size = 3;
  auto rt = sched::make_runtime("quark", config);
  SimEngine engine(models);
  SimSubmitter submitter(*rt, engine);
  double x;
  for (int i = 0; i < 30; ++i) {
    submitter.submit("k", nullptr, {sched::inout(&x)});
  }
  submitter.finish();
  EXPECT_EQ(engine.executed_tasks(), 30u);
  EXPECT_DOUBLE_EQ(engine.trace().makespan_us(), 300.0);
}

}  // namespace
}  // namespace tasksim::sim
