// Tests for the virtual platform (the dedicated-core replay that stands in
// for the paper's real multicore runs — DESIGN.md §3) and the DAG-replay
// DES baseline.
#include <gtest/gtest.h>

#include <memory>

#include "dag/builder.hpp"
#include "sched/factory.hpp"
#include "sched/submitter.hpp"
#include "sim/dag_replay.hpp"
#include "sim/virtual_platform.hpp"
#include "stats/distribution.hpp"
#include "support/error.hpp"

namespace tasksim::sim {
namespace {

sched::TaskDescriptor descriptor(std::string kernel, sched::AccessList accesses) {
  sched::TaskDescriptor desc;
  desc.kernel = std::move(kernel);
  desc.accesses = std::move(accesses);
  desc.function = [](sched::TaskContext&) {};
  return desc;
}

// Drive the observer hooks by hand for exact timing control.
TEST(VirtualPlatform, SerializesTasksOnOneWorker) {
  VirtualPlatform vp;
  double x, y;
  vp.on_submit(0, descriptor("a", {sched::inout(&x)}));
  vp.on_submit(1, descriptor("b", {sched::inout(&y)}));  // independent
  // Both ran on worker 0, back to back in wall time, 100us CPU each.
  vp.on_finish(0, "a", 0, 1000.0, 1100.0, 0.0, 100.0);
  vp.on_finish(1, "b", 0, 1100.0, 1200.0, 100.0, 200.0);
  const trace::Trace timeline = vp.replay();
  EXPECT_DOUBLE_EQ(timeline.makespan_us(), 200.0);  // serialized on worker 0
}

TEST(VirtualPlatform, IndependentTasksOnDifferentWorkersOverlap) {
  VirtualPlatform vp;
  double x, y;
  vp.on_submit(0, descriptor("a", {sched::inout(&x)}));
  vp.on_submit(1, descriptor("b", {sched::inout(&y)}));
  // Time-sliced on one physical core (disjoint wall intervals) but on
  // different workers: the replay overlaps them.
  vp.on_finish(0, "a", 0, 1000.0, 1100.0, 0.0, 100.0);
  vp.on_finish(1, "b", 1, 1100.0, 1200.0, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(vp.virtual_makespan_us(), 100.0);
}

TEST(VirtualPlatform, DependenceDelaysSuccessor) {
  VirtualPlatform vp;
  double x;
  vp.on_submit(0, descriptor("w", {sched::out(&x)}));
  vp.on_submit(1, descriptor("r", {sched::in(&x)}));
  vp.on_finish(0, "w", 0, 1000.0, 1100.0, 0.0, 100.0);
  vp.on_finish(1, "r", 1, 1100.0, 1150.0, 0.0, 50.0);
  // Worker 1 is free at virtual 0 but must wait for the writer: 100 + 50.
  EXPECT_DOUBLE_EQ(vp.virtual_makespan_us(), 150.0);
}

TEST(VirtualPlatform, WarDependenceAlsoRespected) {
  VirtualPlatform vp;
  double x;
  vp.on_submit(0, descriptor("r", {sched::in(&x)}));
  vp.on_submit(1, descriptor("w", {sched::out(&x)}));
  vp.on_finish(0, "r", 0, 0.0, 10.0, 0.0, 80.0);
  vp.on_finish(1, "w", 1, 10.0, 20.0, 0.0, 30.0);
  EXPECT_DOUBLE_EQ(vp.virtual_makespan_us(), 110.0);  // 80 + 30
}

TEST(VirtualPlatform, ReplayRequiresAllTasksFinished) {
  VirtualPlatform vp;
  double x;
  vp.on_submit(0, descriptor("a", {sched::inout(&x)}));
  EXPECT_THROW(vp.replay(), InvalidArgument);
}

TEST(VirtualPlatform, ClearResets) {
  VirtualPlatform vp;
  double x;
  vp.on_submit(0, descriptor("a", {sched::inout(&x)}));
  vp.on_finish(0, "a", 0, 0.0, 1.0, 0.0, 1.0);
  EXPECT_EQ(vp.task_count(), 1u);
  vp.clear();
  EXPECT_EQ(vp.task_count(), 0u);
  EXPECT_DOUBLE_EQ(vp.replay().makespan_us(), 0.0);
}

TEST(VirtualPlatform, AttachedToRuntimeProducesConsistentTimeline) {
  sched::RuntimeConfig config;
  config.workers = 3;
  auto rt = sched::make_runtime("quark", config);
  VirtualPlatform vp;
  rt->add_observer(&vp);
  sched::RealSubmitter submitter(*rt);
  double slots[6];
  for (int i = 0; i < 30; ++i) {
    submitter.submit(
        "k",
        [] {
          volatile double v = 0;
          for (int j = 0; j < 5000; ++j) v += j;
        },
        {sched::inout(&slots[i % 6])});
  }
  submitter.finish();
  rt->remove_observer(&vp);

  const trace::Trace timeline = vp.replay();
  EXPECT_EQ(timeline.size(), 30u);
  // Lanes never overlap and chains are serialized.
  std::map<int, std::vector<std::pair<double, double>>> lanes;
  for (const auto& e : timeline.events()) {
    lanes[e.worker].emplace_back(e.start_us, e.end_us);
  }
  for (auto& [worker, intervals] : lanes) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first + 1e-9, intervals[i - 1].second);
    }
  }
}

// ------------------------------------------------------------- dag replay

dag::TaskGraph chain_graph(int n, double weight) {
  dag::TaskGraph g;
  for (int i = 0; i < n; ++i) g.add_node("k", weight);
  for (dag::NodeId i = 0; i + 1 < static_cast<dag::NodeId>(n); ++i) {
    g.add_edge(i, i + 1, dag::DepKind::raw);
  }
  return g;
}

TEST(DagReplay, ChainIgnoresExtraWorkers) {
  DagReplayOptions options;
  options.workers = 8;
  const auto result = replay_dag(chain_graph(10, 5.0), weight_duration_fn(),
                                 options);
  EXPECT_DOUBLE_EQ(result.makespan_us, 50.0);
  EXPECT_EQ(result.timeline.size(), 10u);
}

TEST(DagReplay, SingleWorkerSumsAllWork) {
  dag::TaskGraph g;
  for (int i = 0; i < 6; ++i) g.add_node("k", 10.0);  // independent
  DagReplayOptions options;
  options.workers = 1;
  EXPECT_DOUBLE_EQ(replay_dag(g, weight_duration_fn(), options).makespan_us,
                   60.0);
}

TEST(DagReplay, ManyWorkersReachCriticalPath) {
  // Diamond: 1 + max(2, 5) + 1 = 7 with enough workers.
  dag::TaskGraph g;
  g.add_node("a", 1.0);
  g.add_node("b", 2.0);
  g.add_node("c", 5.0);
  g.add_node("d", 1.0);
  g.add_edge(0, 1, dag::DepKind::raw);
  g.add_edge(0, 2, dag::DepKind::raw);
  g.add_edge(1, 3, dag::DepKind::raw);
  g.add_edge(2, 3, dag::DepKind::raw);
  DagReplayOptions options;
  options.workers = 4;
  EXPECT_DOUBLE_EQ(replay_dag(g, weight_duration_fn(), options).makespan_us,
                   7.0);
}

TEST(DagReplay, TwoWorkersLoadBalance) {
  dag::TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_node("k", 10.0);  // independent
  DagReplayOptions options;
  options.workers = 2;
  EXPECT_DOUBLE_EQ(replay_dag(g, weight_duration_fn(), options).makespan_us,
                   20.0);
}

TEST(DagReplay, ModelDurationFnSamples) {
  KernelModelSet models;
  models.set_model("k", std::make_unique<stats::ConstantDist>(3.0));
  Rng rng(1);
  const auto result = replay_dag(chain_graph(5, 0.0),
                                 model_duration_fn(models, rng),
                                 DagReplayOptions{2, false});
  EXPECT_DOUBLE_EQ(result.makespan_us, 15.0);
}

TEST(DagReplay, DeterministicGivenWeights) {
  Rng rng(5);
  dag::DagBuilder builder;
  double objects[4];
  for (int t = 0; t < 40; ++t) {
    std::vector<dag::DataRef> refs;
    refs.push_back(rng.uniform() < 0.5
                       ? dag::read_ref(&objects[rng.uniform_index(4)])
                       : dag::rw_ref(&objects[rng.uniform_index(4)]));
    builder.submit("k", refs, rng.uniform(1.0, 10.0));
  }
  const dag::TaskGraph& g = builder.graph();
  const auto a = replay_dag(g, weight_duration_fn(), DagReplayOptions{3, false});
  const auto b = replay_dag(g, weight_duration_fn(), DagReplayOptions{3, false});
  EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
}

TEST(DagReplay, CriticalPathPriorityNotWorse) {
  // A wide fork where one branch dominates: prioritizing the critical path
  // must not produce a longer schedule than FIFO.
  dag::TaskGraph g;
  const auto root = g.add_node("r", 1.0);
  const auto heavy = g.add_node("h", 50.0);
  g.add_edge(root, heavy, dag::DepKind::raw);
  for (int i = 0; i < 6; ++i) {
    g.add_edge(root, g.add_node("l", 10.0), dag::DepKind::raw);
  }
  DagReplayOptions fifo{2, false};
  DagReplayOptions cp{2, true};
  const double fifo_ms = replay_dag(g, weight_duration_fn(), fifo).makespan_us;
  const double cp_ms = replay_dag(g, weight_duration_fn(), cp).makespan_us;
  EXPECT_LE(cp_ms, fifo_ms);
  EXPECT_DOUBLE_EQ(cp_ms, 61.0);  // 1 + max(50, 60/2 interleaved) => 1+60
}

TEST(DagReplay, RejectsZeroWorkers) {
  EXPECT_THROW(replay_dag(chain_graph(2, 1.0), weight_duration_fn(),
                          DagReplayOptions{0, false}),
               InvalidArgument);
}

}  // namespace
}  // namespace tasksim::sim
