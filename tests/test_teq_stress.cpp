// test_teq_stress.cpp — adversarial concurrency stress for the Task
// Execution Queue, written to run under ThreadSanitizer (the CI tsan job
// builds the whole test suite with -fsanitize=thread).
//
// The TEQ's published-front + per-ticket-parking fast path (DESIGN.md §9)
// replaces a mutex+condvar-broadcast implementation.  These tests pin the
// semantics the rewrite must preserve:
//
//   * exit order == sorted (completion_us, seq) — the paper's §V-C
//     invariant, including the entry-order tie-break,
//   * §V-E displacement: a late arrival with an earlier completion time
//     re-blocks the displaced front, under sustained storms,
//   * cancellation lands SimulationStalled on every blocked stack, and
//     clear_cancel() re-arms the queue (with the seq counter reset),
//
// and they cross-check the lock-free implementation against a deliberately
// naive mutex+condvar oracle running the identical schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/task_exec_queue.hpp"
#include "support/error.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace tasksim::sim {
namespace {

// Reference implementation of the documented TEQ semantics: one mutex, one
// broadcast condvar, wake everybody on every change.  Slow and herd-prone
// by construction — it exists so the stress rounds can diff the optimized
// queue's observable behaviour against the simplest possible model.
class OracleQueue {
 public:
  using Ticket = TaskExecQueue::Ticket;

  Ticket enter(double completion_us) {
    std::lock_guard<std::mutex> lock(mutex_);
    Ticket t{completion_us, next_seq_++};
    entries_.emplace(std::make_pair(completion_us, t.seq), 0);
    cv_.notify_all();
    return t;
  }

  void wait_front(const Ticket& t) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      return !entries_.empty() &&
             entries_.begin()->first == std::make_pair(t.completion_us, t.seq);
    });
  }

  void leave(const Ticket& t) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase({t.completion_us, t.seq});
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::pair<double, std::uint64_t>, int> entries_;
  std::uint64_t next_seq_ = 0;
};

// One stress round: every thread enters with its assigned completion time,
// a barrier makes sure the whole cohort is in the queue, then everyone
// waits for the front and records its exit position.  Returns the exit
// order as (completion_us, seq) pairs.
template <typename Queue>
std::vector<std::pair<double, std::uint64_t>> run_round(
    Queue& q, const std::vector<double>& completions) {
  const int n = static_cast<int>(completions.size());
  std::atomic<int> entered{0};
  std::mutex order_mutex;
  std::vector<std::pair<double, std::uint64_t>> exit_order;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      const auto ticket = q.enter(completions[static_cast<std::size_t>(i)]);
      entered.fetch_add(1);
      while (entered.load() < n) std::this_thread::yield();
      q.wait_front(ticket);
      {
        std::lock_guard<std::mutex> lock(order_mutex);
        exit_order.emplace_back(ticket.completion_us, ticket.seq);
      }
      q.leave(ticket);
    });
  }
  for (auto& th : threads) th.join();
  return exit_order;
}

TEST(TeqStress, ExitOrderIsSortedTicketOrderAcrossRounds) {
  // Many rounds of oversubscribed waiters with clustered completion times
  // (duplicates exercise the seq tie-break).  Exit order must equal the
  // sorted (completion_us, seq) order of the cohort, every round.
  TaskExecQueue q;
  Rng rng(23);
  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<double> completions;
    for (int i = 0; i < kThreads; ++i) {
      // Values drawn from a small integer grid: ~half the cohort collides.
      completions.push_back(std::floor(rng.uniform(0.0, 4.0)) * 100.0);
    }
    const auto exits = run_round(q, completions);
    ASSERT_EQ(exits.size(), static_cast<std::size_t>(kThreads));
    auto sorted = exits;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(exits, sorted) << "round " << round;
  }
}

TEST(TeqStress, MatchesOracleQueueOnIdenticalSchedules) {
  // Distinct completion times make the exit order a pure function of the
  // schedule (ties would make seq assignment racy), so the optimized queue
  // and the naive oracle must produce the same completion_us sequence.
  Rng rng(31);
  constexpr int kThreads = 8;
  constexpr int kRounds = 15;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<double> completions;
    for (int i = 0; i < kThreads; ++i) {
      completions.push_back(rng.uniform(0.0, 1000.0) + i * 1e-3);
    }
    TaskExecQueue real;
    OracleQueue oracle;
    const auto real_exits = run_round(real, completions);
    const auto oracle_exits = run_round(oracle, completions);
    ASSERT_EQ(real_exits.size(), oracle_exits.size());
    for (std::size_t i = 0; i < real_exits.size(); ++i) {
      EXPECT_DOUBLE_EQ(real_exits[i].first, oracle_exits[i].first)
          << "round " << round << " position " << i;
    }
  }
}

TEST(TeqStress, DisplacementStormReleasesWaitersInOrder) {
  // §V-E under pressure: long-completion waiters park while a storm thread
  // pumps short-completion tickets through the queue, displacing the front
  // over and over.  The waiters must stay blocked through every storm
  // ticket and still exit in sorted order afterwards.
  const auto disp_before = [] {
    const auto snap = metrics::snapshot();
    const auto it = snap.counters.find("sim.queue.displacements");
    return it == snap.counters.end() ? std::uint64_t{0} : it->second;
  }();

  TaskExecQueue q;
  constexpr int kWaiters = 6;
  constexpr int kStormTickets = 400;
  std::atomic<int> entered{0};
  std::atomic<int> released{0};
  std::mutex order_mutex;
  std::vector<double> exit_order;
  // The first storm ticket goes in before any waiter so the far-future
  // waiters are never the front until the storm has fully passed.
  auto prev = q.enter(static_cast<double>(kStormTickets + 1));
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      // Far-future completions: every storm ticket displaces them.
      const auto t = q.enter(1e6 + i * 100.0);
      entered.fetch_add(1);
      q.wait_front(t);
      {
        std::lock_guard<std::mutex> lock(order_mutex);
        exit_order.push_back(t.completion_us);
      }
      released.fetch_add(1);
      q.leave(t);
    });
  }
  while (entered.load() < kWaiters) std::this_thread::yield();

  // Overlapping storm tickets with strictly decreasing completion times:
  // every enter displaces the current front, and a storm ticket is always
  // in the queue, so no waiter may be released until the storm ends.  The
  // leave of the *previous* storm ticket is a non-front removal — the
  // no-publication, no-wakeup path.
  for (int i = kStormTickets; i >= 1; --i) {
    const auto next = q.enter(static_cast<double>(i));  // displaces front
    EXPECT_TRUE(q.is_front(next));
    EXPECT_EQ(released.load(), 0) << "waiter escaped during the storm";
    q.leave(prev);
    prev = next;
  }
  q.wait_front(prev);  // it is the front: lock-free fast path
  q.leave(prev);       // promotes the first waiter — the drain begins
  for (auto& th : waiters) th.join();

  ASSERT_EQ(exit_order.size(), static_cast<std::size_t>(kWaiters));
  EXPECT_TRUE(std::is_sorted(exit_order.begin(), exit_order.end()));
  const auto snap = metrics::snapshot();
  EXPECT_GE(snap.counters.at("sim.queue.displacements"),
            disp_before + kStormTickets);
}

TEST(TeqStress, CancelWhileParkedStormReleasesEveryDuplicate) {
  // Hedging's cancellation path under load (DESIGN.md §12): a cohort of
  // waiters parks behind a pinned front inside wait_front_cancellable,
  // then the "winner" sets every token and kicks the parked tickets.
  // Every waiter must observe CancellableWait::cancelled — never front,
  // the blocker owns it throughout — and leave; the queue must drain to
  // empty afterwards (ticket-leak freedom, the invariant behind the
  // engine's launched == cancelled gate).
  TaskExecQueue q;
  constexpr int kWaiters = 8;
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    const auto blocker = q.enter(0.0);  // pins the front for the round
    std::array<std::atomic<bool>, kWaiters> tokens{};
    std::array<TaskExecQueue::Ticket, kWaiters> tickets{};
    std::atomic<int> entered{0};
    std::atomic<int> cancelled{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kWaiters; ++i) {
      threads.emplace_back([&, i] {
        const auto t = q.enter(10.0 + i);
        tickets[static_cast<std::size_t>(i)] = t;
        entered.fetch_add(1);
        const auto outcome =
            q.wait_front_cancellable(t, tokens[static_cast<std::size_t>(i)]);
        EXPECT_EQ(outcome, TaskExecQueue::CancellableWait::cancelled)
            << "round " << round << " waiter " << i;
        cancelled.fetch_add(1);
        q.leave(t);
      });
    }
    while (entered.load() < kWaiters) std::this_thread::yield();
    // Token store (release) strictly before the kick, mirroring the
    // engine's commit path.  Reverse entry order so the storm also kicks
    // tickets deep in the queue, not just the one behind the front.  One
    // kick per ticket must suffice: slot registration and the token
    // re-check share the queue mutex, so a kick can never be lost.
    for (int i = kWaiters - 1; i >= 0; --i) {
      tokens[static_cast<std::size_t>(i)].store(true,
                                                std::memory_order_release);
      q.kick(tickets[static_cast<std::size_t>(i)]);
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(cancelled.load(), kWaiters) << "round " << round;
    q.leave(blocker);
    EXPECT_EQ(q.size(), 0u) << "round " << round;
  }
}

TEST(TeqStress, InterleavedCancelAndRearmRounds) {
  // Alternate normal rounds with cancelled ones on a single queue.  A
  // cancellation must land SimulationStalled on every blocked stack; after
  // clear_cancel() the queue must behave exactly like a fresh one
  // (including restarting the ticket seqs).
  TaskExecQueue q;
  constexpr int kThreads = 6;
  constexpr int kIterations = 10;
  Rng rng(47);
  for (int iter = 0; iter < kIterations; ++iter) {
    if (iter % 2 == 0) {
      std::vector<double> completions;
      for (int i = 0; i < kThreads; ++i) {
        completions.push_back(rng.uniform(0.0, 100.0) + i * 1e-3);
      }
      const auto exits = run_round(q, completions);
      auto sorted = exits;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(exits, sorted) << "normal round " << iter;
      // clear_cancel() reset the seq counter last round, so seqs restart
      // from 0 every normal round.
      std::uint64_t min_seq = ~std::uint64_t{0};
      for (const auto& [us, seq] : exits) min_seq = std::min(min_seq, seq);
      EXPECT_EQ(min_seq, 0u) << "normal round " << iter;
    } else {
      const auto blocker = q.enter(0.0);  // holds the front
      std::atomic<int> entered{0};
      std::atomic<int> stalled{0};
      std::vector<std::thread> threads;
      for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
          const auto t = q.enter(10.0 + i);
          entered.fetch_add(1);
          try {
            q.wait_front(t);
          } catch (const SimulationStalled&) {
            stalled.fetch_add(1);
          }
          // A cancelled waiter still removes its ticket on the way out —
          // the sim engine's unwind path does the same, which is what
          // leaves the queue empty for clear_cancel().
          q.leave(t);
        });
      }
      while (entered.load() < kThreads) std::this_thread::yield();
      q.cancel("stress round " + std::to_string(iter));
      for (auto& th : threads) th.join();
      EXPECT_EQ(stalled.load(), kThreads) << "cancel round " << iter;
      EXPECT_THROW(q.enter(1.0), SimulationStalled);
      q.leave(blocker);
      q.clear_cancel();
    }
  }
}

}  // namespace
}  // namespace tasksim::sim
