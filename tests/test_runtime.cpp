// Cross-scheduler runtime tests, parameterized over every runtime spec
// (the paper's portability claim, in test form): dependence enforcement,
// barriers, windows, observers, counters.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/factory.hpp"
#include "sched/observers.hpp"
#include "sched/runtime_base.hpp"
#include "sched/task_builder.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace tasksim::sched {
namespace {

class RuntimeTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Runtime> make(int workers, std::size_t window = 0,
                                bool master = false) {
    RuntimeConfig config;
    config.workers = workers;
    config.window_size = window;
    config.master_participates = master;
    return make_runtime(GetParam(), config);
  }
};

INSTANTIATE_TEST_SUITE_P(AllSchedulers, RuntimeTest,
                         ::testing::ValuesIn(known_runtime_specs()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

TaskDescriptor simple_task(std::string kernel, std::function<void()> body,
                           AccessList accesses) {
  TaskDescriptor desc;
  desc.kernel = std::move(kernel);
  desc.function = [body = std::move(body)](TaskContext&) { body(); };
  desc.accesses = std::move(accesses);
  return desc;
}

TEST_P(RuntimeTest, ExecutesAllTasks) {
  auto rt = make(3);
  std::atomic<int> count{0};
  double objects[8];
  for (int i = 0; i < 64; ++i) {
    rt->submit(simple_task("k", [&count] { ++count; },
                           {inout(&objects[i % 8])}));
  }
  rt->wait_all();
  EXPECT_EQ(count.load(), 64);
}

TEST_P(RuntimeTest, EnforcesRawChainOrder) {
  auto rt = make(4);
  double x;
  std::vector<int> order;
  std::mutex order_mutex;
  for (int i = 0; i < 32; ++i) {
    rt->submit(simple_task("k",
                           [&order, &order_mutex, i] {
                             std::lock_guard<std::mutex> lock(order_mutex);
                             order.push_back(i);
                           },
                           {inout(&x)}));
  }
  rt->wait_all();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(RuntimeTest, ConcurrentReadersMayOverlapAndNeverRaceWriter) {
  auto rt = make(4);
  double x = 0.0;
  std::atomic<int> active_readers{0};
  std::atomic<bool> writer_during_read{false};
  std::atomic<bool> writer_running{false};

  rt->submit(simple_task("w", [&] {
    writer_running = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    writer_running = false;
  }, {out(&x)}));
  for (int i = 0; i < 8; ++i) {
    rt->submit(simple_task("r", [&] {
      active_readers.fetch_add(1);
      if (writer_running.load()) writer_during_read = true;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      active_readers.fetch_sub(1);
    }, {in(&x)}));
  }
  rt->submit(simple_task("w2", [&] {
    if (active_readers.load() != 0) writer_during_read = true;
  }, {out(&x)}));
  rt->wait_all();
  EXPECT_FALSE(writer_during_read.load());
}

TEST_P(RuntimeTest, WaitAllIsReusableBarrier) {
  auto rt = make(2);
  std::atomic<int> count{0};
  double x;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      rt->submit(simple_task("k", [&count] { ++count; }, {inout(&x)}));
    }
    rt->wait_all();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST_P(RuntimeTest, EmptyWaitAllReturns) {
  auto rt = make(2);
  rt->wait_all();
  rt->wait_all();
  SUCCEED();
}

TEST_P(RuntimeTest, WindowBoundsLiveTasks) {
  auto rt = make(2, /*window=*/4);
  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  double objects[16];
  for (int i = 0; i < 64; ++i) {
    rt->submit(simple_task("k",
                           [&live, &peak] {
                             const int now = live.fetch_add(1) + 1;
                             int old = peak.load();
                             while (old < now &&
                                    !peak.compare_exchange_weak(old, now)) {
                             }
                             std::this_thread::sleep_for(
                                 std::chrono::microseconds(100));
                             live.fetch_sub(1);
                           },
                           {inout(&objects[i % 16])}));
  }
  rt->wait_all();
  // At most `window` tasks can be live at once, so at most `window` can
  // execute concurrently.
  EXPECT_LE(peak.load(), 4);
}

TEST_P(RuntimeTest, CountersReturnToZeroAtBarrier) {
  auto rt = make(3);
  double x, y;
  for (int i = 0; i < 20; ++i) {
    rt->submit(simple_task("k", [] {}, {inout(i % 2 ? &x : &y)}));
  }
  rt->wait_all();
  EXPECT_EQ(rt->running_task_count(), 0);
  EXPECT_EQ(rt->ready_task_count(), 0u);
  EXPECT_EQ(rt->bookkeeping_in_flight(), 0);
  EXPECT_FALSE(rt->ready_task_reachable());
  EXPECT_FALSE(rt->submitter_waiting());
}

TEST_P(RuntimeTest, ObserverSeesFullLifecycle) {
  struct Recorder final : TaskObserver {
    std::mutex mutex;
    std::vector<std::string> events;
    void on_submit(TaskId id, const TaskDescriptor&) override {
      std::lock_guard<std::mutex> lock(mutex);
      events.push_back("submit" + std::to_string(id));
    }
    void on_ready(TaskId id) override {
      std::lock_guard<std::mutex> lock(mutex);
      events.push_back("ready" + std::to_string(id));
    }
    void on_start(TaskId id, const std::string&, int, double, double) override {
      std::lock_guard<std::mutex> lock(mutex);
      events.push_back("start" + std::to_string(id));
    }
    void on_finish(TaskId id, const std::string&, int, double, double, double,
                   double) override {
      std::lock_guard<std::mutex> lock(mutex);
      events.push_back("finish" + std::to_string(id));
    }
  } recorder;

  auto rt = make(2);
  rt->add_observer(&recorder);
  double x;
  rt->submit(simple_task("k", [] {}, {inout(&x)}));
  rt->submit(simple_task("k", [] {}, {inout(&x)}));
  rt->wait_all();
  rt->remove_observer(&recorder);

  // Each task goes submit -> ready -> start -> finish, in that order.
  for (TaskId id = 0; id < 2; ++id) {
    const auto find = [&](const std::string& tag) {
      const std::string needle = tag + std::to_string(id);
      for (std::size_t i = 0; i < recorder.events.size(); ++i) {
        if (recorder.events[i] == needle) return i;
      }
      return recorder.events.size();
    };
    const std::size_t submit = find("submit");
    const std::size_t ready = find("ready");
    const std::size_t start = find("start");
    const std::size_t finish = find("finish");
    ASSERT_LT(finish, recorder.events.size()) << "task " << id;
    EXPECT_LT(submit, ready);
    EXPECT_LT(ready, start);
    EXPECT_LT(start, finish);
  }
}

TEST_P(RuntimeTest, ObserverWallAndCpuTimesConsistent) {
  struct Times final : TaskObserver {
    std::atomic<bool> ok{true};
    void on_finish(TaskId, const std::string&, int, double sw, double ew,
                   double sc, double ec) override {
      if (ew < sw || ec < sc) ok = false;
    }
  } times;
  auto rt = make(2);
  rt->add_observer(&times);
  double x;
  for (int i = 0; i < 10; ++i) {
    rt->submit(simple_task("k",
                           [] {
                             volatile double v = 0;
                             for (int j = 0; j < 1000; ++j) v += j;
                           },
                           {inout(&x)}));
  }
  rt->wait_all();
  rt->remove_observer(&times);
  EXPECT_TRUE(times.ok.load());
}

TEST_P(RuntimeTest, TaskContextCarriesRuntimeAndWorker) {
  auto rt = make(3);
  std::atomic<bool> ok{true};
  double x;
  TaskDescriptor desc;
  desc.kernel = "k";
  desc.accesses = {inout(&x)};
  Runtime* expected = rt.get();
  desc.function = [&ok, expected](TaskContext& ctx) {
    if (ctx.runtime != expected) ok = false;
    if (ctx.worker < 0 || ctx.worker >= expected->worker_count()) ok = false;
  };
  rt->submit(std::move(desc));
  rt->wait_all();
  EXPECT_TRUE(ok.load());
}

TEST_P(RuntimeTest, TasksPerWorkerSumsToTotal) {
  auto rt = make(3);
  double objects[4];
  for (int i = 0; i < 40; ++i) {
    rt->submit(simple_task("k", [] {}, {inout(&objects[i % 4])}));
  }
  rt->wait_all();
  auto* base = dynamic_cast<RuntimeBase*>(rt.get());
  ASSERT_NE(base, nullptr);
  std::uint64_t total = 0;
  for (std::uint64_t c : base->tasks_per_worker()) total += c;
  EXPECT_EQ(total, 40u);
}

TEST_P(RuntimeTest, MasterParticipationExecutesTasks) {
  auto rt = make(2, 0, /*master=*/true);
  std::atomic<int> count{0};
  double objects[4];
  for (int i = 0; i < 30; ++i) {
    rt->submit(simple_task("k", [&count] { ++count; },
                           {inout(&objects[i % 4])}));
  }
  rt->wait_all();
  EXPECT_EQ(count.load(), 30);
}

TEST_P(RuntimeTest, SingleWorkerRunsEverythingInSubmissionOrderPerObject) {
  auto rt = make(1);
  double x, y;
  std::vector<int> xs, ys;
  for (int i = 0; i < 10; ++i) {
    rt->submit(simple_task("k", [&xs, i] { xs.push_back(i); }, {inout(&x)}));
    rt->submit(simple_task("k", [&ys, i] { ys.push_back(i); }, {inout(&y)}));
  }
  rt->wait_all();
  ASSERT_EQ(xs.size(), 10u);
  ASSERT_EQ(ys.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(xs[i], i);
    EXPECT_EQ(ys[i], i);
  }
}

TEST_P(RuntimeTest, RejectsTaskWithoutFunction) {
  auto rt = make(1);
  TaskDescriptor desc;
  desc.kernel = "k";
  EXPECT_THROW(rt->submit(std::move(desc)), InvalidArgument);
}

TEST_P(RuntimeTest, DagCaptureMatchesSubmissionCount) {
  auto rt = make(2);
  DagCaptureObserver capture;
  rt->add_observer(&capture);
  double a, b, c;
  rt->submit(simple_task("w", [] {}, {out(&a)}));
  rt->submit(simple_task("r", [] {}, {in(&a), out(&b)}));
  rt->submit(simple_task("r", [] {}, {in(&a), out(&c)}));
  rt->submit(simple_task("j", [] {}, {in(&b), in(&c)}));
  rt->wait_all();
  rt->remove_observer(&capture);
  EXPECT_EQ(capture.graph().node_count(), 4u);
  EXPECT_EQ(capture.graph().edge_count(), 4u);  // fork-join
}

TEST_P(RuntimeTest, TaskBuilderSubmits) {
  auto rt = make(2);
  double x = 0.0;
  std::atomic<int> runs{0};
  TaskBuilder(*rt, "inc").readwrites(&x).priority(1).run(
      [&runs](TaskContext&) { ++runs; });
  TaskBuilder(*rt, "inc").reads(&x).run([&runs](TaskContext&) { ++runs; });
  rt->wait_all();
  EXPECT_EQ(runs.load(), 2);
}

// Stress: a random DAG executed on every scheduler must respect all data
// hazards.  Violations are detected with per-object version counters.
TEST_P(RuntimeTest, RandomDagRespectsHazards) {
  auto rt = make(4);
  constexpr int kObjects = 6;
  struct Obj {
    std::atomic<int> writers{0};
    std::atomic<int> readers{0};
    double payload = 0.0;
  };
  Obj objects[kObjects];
  std::atomic<bool> violation{false};
  Rng rng(321);

  for (int t = 0; t < 300; ++t) {
    AccessList accesses;
    std::vector<std::pair<int, bool>> uses;  // (object, is_write)
    const int nrefs = 1 + static_cast<int>(rng.uniform_index(2));
    for (int r = 0; r < nrefs; ++r) {
      const int obj = static_cast<int>(rng.uniform_index(kObjects));
      bool duplicate = false;
      for (const auto& [o, w] : uses) {
        if (o == obj) duplicate = true;
      }
      if (duplicate) continue;
      const bool write = rng.uniform() < 0.4;
      uses.emplace_back(obj, write);
      accesses.push_back(write ? inout(&objects[obj].payload)
                               : in(&objects[obj].payload));
    }
    rt->submit(simple_task(
        "k",
        [&objects, &violation, uses] {
          for (const auto& [obj, write] : uses) {
            if (write) {
              if (objects[obj].writers.fetch_add(1) != 0) violation = true;
              if (objects[obj].readers.load() != 0) violation = true;
            } else {
              objects[obj].readers.fetch_add(1);
              if (objects[obj].writers.load() != 0) violation = true;
            }
          }
          std::this_thread::sleep_for(std::chrono::microseconds(20));
          for (const auto& [obj, write] : uses) {
            if (write) {
              objects[obj].writers.fetch_sub(1);
            } else {
              objects[obj].readers.fetch_sub(1);
            }
          }
        },
        std::move(accesses)));
  }
  rt->wait_all();
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace tasksim::sched
