// Tests for the tile layout and the task-based Cholesky / QR
// factorizations running on every scheduler (real execution).
#include <gtest/gtest.h>

#include "linalg/tile_cholesky.hpp"
#include "linalg/tile_matrix.hpp"
#include "linalg/tile_qr.hpp"
#include "linalg/verify.hpp"
#include "sched/factory.hpp"
#include "sched/submitter.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace tasksim::linalg {
namespace {

// ------------------------------------------------------------ tile matrix

TEST(TileMatrix, LayoutRoundTripsThroughDense) {
  Rng rng(1);
  const Matrix dense = Matrix::random(12, 12, rng);
  const TileMatrix tiled = TileMatrix::from_dense(dense, 4);
  EXPECT_EQ(tiled.tiles(), 3);
  EXPECT_EQ(tiled.tile_size(), 4);
  EXPECT_LT(relative_error(tiled.to_dense(), dense), 1e-15);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(tiled.at(i, j), dense(i, j));
    }
  }
}

TEST(TileMatrix, TilesAreContiguousAndDistinct) {
  TileMatrix t(8, 4);
  EXPECT_NE(t.tile(0, 0), t.tile(1, 0));
  EXPECT_NE(t.tile(0, 0), t.tile(0, 1));
  // Tile storage is contiguous: writing 16 doubles through the pointer
  // stays within the tile.
  double* tile = t.tile(1, 1);
  for (int i = 0; i < 16; ++i) tile[i] = 7.0;
  EXPECT_DOUBLE_EQ(t.at(4, 4), 7.0);
  EXPECT_DOUBLE_EQ(t.at(7, 7), 7.0);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 0.0);
}

TEST(TileMatrix, RejectsBadShapes) {
  EXPECT_THROW(TileMatrix(10, 3), InvalidArgument);  // not a multiple
  EXPECT_THROW(TileMatrix(0, 4), InvalidArgument);
  TileMatrix t(8, 4);
  EXPECT_THROW(t.tile(2, 0), InvalidArgument);
  EXPECT_THROW(t.at(8, 0), InvalidArgument);
}

TEST(TileMatrix, ZerosLikeMatchesShape) {
  TileMatrix a(12, 4);
  TileMatrix z = TileMatrix::zeros_like(a);
  EXPECT_EQ(z.n(), 12);
  EXPECT_EQ(z.tile_size(), 4);
  EXPECT_DOUBLE_EQ(frobenius_norm(z.to_dense()), 0.0);
}

// -------------------------------------------------- factorization fixture

class TileAlgoTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<sched::Runtime> make_rt(int workers = 3) {
    sched::RuntimeConfig config;
    config.workers = workers;
    return sched::make_runtime(GetParam(), config);
  }
};

INSTANTIATE_TEST_SUITE_P(AllSchedulers, TileAlgoTest,
                         ::testing::Values("quark", "starpu/eager",
                                           "starpu/dmda", "ompss/bf",
                                           "ompss/wf"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/') c = '_';
                           }
                           return name;
                         });

TEST_P(TileAlgoTest, CholeskyFactorsCorrectly) {
  Rng rng(42);
  const int n = 96, nb = 24;
  const Matrix original = Matrix::random_spd(n, rng);
  TileMatrix a = TileMatrix::from_dense(original, nb);

  auto rt = make_rt();
  sched::RealSubmitter submitter(*rt);
  EXPECT_EQ(tile_cholesky(a, submitter), 0);
  EXPECT_LT(cholesky_residual(original, a), 1e-13);
}

TEST_P(TileAlgoTest, CholeskyDetectsNonSpd) {
  const int n = 32, nb = 8;
  Matrix bad = Matrix::identity(n);
  bad(n - 1, n - 1) = -1.0;  // indefinite in the last tile
  TileMatrix a = TileMatrix::from_dense(bad, nb);
  auto rt = make_rt();
  sched::RealSubmitter submitter(*rt);
  EXPECT_GT(tile_cholesky(a, submitter), 0);
}

TEST_P(TileAlgoTest, QrFactorsCorrectly) {
  Rng rng(43);
  const int n = 80, nb = 16;
  const Matrix original = Matrix::random(n, n, rng);
  TileMatrix a = TileMatrix::from_dense(original, nb);
  TileMatrix t = TileMatrix::zeros_like(a);

  auto rt = make_rt();
  sched::RealSubmitter submitter(*rt);
  tile_qr(a, t, submitter);
  EXPECT_LT(qr_residual(original, a, t), 1e-12);
  EXPECT_LT(qr_orthogonality(a, t), 1e-12);
}

TEST_P(TileAlgoTest, QrRUpperTriangular) {
  Rng rng(44);
  const int n = 48, nb = 16;
  const Matrix original = Matrix::random(n, n, rng);
  TileMatrix a = TileMatrix::from_dense(original, nb);
  TileMatrix t = TileMatrix::zeros_like(a);
  auto rt = make_rt(2);
  sched::RealSubmitter submitter(*rt);
  tile_qr(a, t, submitter);
  // The R factor (upper triangle) must dominate: the Frobenius norm of R
  // equals the norm of A (orthogonal invariance).
  const Matrix r = upper_triangle(a.to_dense());
  EXPECT_NEAR(frobenius_norm(r), frobenius_norm(original),
              1e-10 * frobenius_norm(original));
}

TEST_P(TileAlgoTest, RepeatedFactorizationsOnOneRuntime) {
  Rng rng(45);
  auto rt = make_rt();
  for (int round = 0; round < 3; ++round) {
    const int n = 48, nb = 12;
    const Matrix original = Matrix::random_spd(n, rng);
    TileMatrix a = TileMatrix::from_dense(original, nb);
    sched::RealSubmitter submitter(*rt);
    ASSERT_EQ(tile_cholesky(a, submitter), 0);
    EXPECT_LT(cholesky_residual(original, a), 1e-13);
  }
}

// ------------------------------------------------------------ task counts

TEST(TaskCounts, CholeskyFormulaMatchesEnumeration) {
  // NT tiles: sum over k of 1 + 2*(NT-k-1) + C(NT-k-1, 2).
  EXPECT_EQ(cholesky_task_count(1), 1u);
  EXPECT_EQ(cholesky_task_count(2), 4u);   // potrf,trsm,syrk,potrf
  EXPECT_EQ(cholesky_task_count(3), 10u);
  EXPECT_EQ(cholesky_task_count(4), 20u);  // matches paper Figure-1 scale
}

TEST(TaskCounts, QrFormulaMatchesEnumeration) {
  EXPECT_EQ(qr_task_count(1), 1u);
  EXPECT_EQ(qr_task_count(2), 5u);   // geqrt, ormqr, tsqrt, tsmqr, geqrt
  EXPECT_EQ(qr_task_count(3), 14u);  // the F0..F13 stream of paper Fig. 2
  EXPECT_EQ(qr_task_count(4), 30u);  // the 4x4-tile DAG of paper Fig. 1
}

}  // namespace
}  // namespace tasksim::linalg
