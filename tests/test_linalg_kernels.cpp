// Numerical tests for the from-scratch BLAS and tile-QR kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/blas_kernels.hpp"
#include "linalg/dense.hpp"
#include "linalg/qr_kernels.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace tasksim::linalg {
namespace {

constexpr double kTol = 1e-12;

Matrix to_matrix(const std::vector<double>& data, int rows, int cols) {
  Matrix m(rows, cols);
  for (int j = 0; j < cols; ++j) {
    for (int i = 0; i < rows; ++i) m(i, j) = data[j * rows + i];
  }
  return m;
}

std::vector<double> from_matrix(const Matrix& m) {
  std::vector<double> data(static_cast<std::size_t>(m.rows()) * m.cols());
  for (int j = 0; j < m.cols(); ++j) {
    for (int i = 0; i < m.rows(); ++i) data[j * m.rows() + i] = m(i, j);
  }
  return data;
}

// ------------------------------------------------------------------ dgemm

struct GemmCase {
  Trans ta;
  Trans tb;
  double alpha;
  double beta;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

INSTANTIATE_TEST_SUITE_P(
    AllVariants, GemmTest,
    ::testing::Values(GemmCase{Trans::no, Trans::no, 1.0, 0.0},
                      GemmCase{Trans::no, Trans::yes, -1.0, 1.0},
                      GemmCase{Trans::yes, Trans::no, 2.0, 0.5},
                      GemmCase{Trans::yes, Trans::yes, 0.5, -1.0},
                      GemmCase{Trans::no, Trans::no, 0.0, 2.0}));

TEST_P(GemmTest, MatchesDenseReference) {
  const GemmCase c = GetParam();
  const int m = 7, n = 5, k = 6;
  Rng rng(1);
  const Matrix a = Matrix::random(c.ta == Trans::no ? m : k,
                                  c.ta == Trans::no ? k : m, rng);
  const Matrix b = Matrix::random(c.tb == Trans::no ? k : n,
                                  c.tb == Trans::no ? n : k, rng);
  const Matrix c0 = Matrix::random(m, n, rng);

  // Reference: alpha*op(A)*op(B) + beta*C via the dense helpers.
  Matrix expected = matmul(a, b, c.ta == Trans::yes, c.tb == Trans::yes);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      expected(i, j) = c.alpha * expected(i, j) + c.beta * c0(i, j);
    }
  }

  std::vector<double> cv = from_matrix(c0);
  dgemm(c.ta, c.tb, m, n, k, c.alpha, a.data(), a.rows(), b.data(), b.rows(),
        c.beta, cv.data(), m);
  EXPECT_LT(relative_error(to_matrix(cv, m, n), expected), kTol);
}

TEST(Gemm, ZeroDimensionsAreNoOps) {
  double c = 3.0;
  dgemm(Trans::no, Trans::no, 1, 1, 0, 1.0, nullptr, 1, nullptr, 1, 1.0, &c, 1);
  EXPECT_DOUBLE_EQ(c, 3.0);
  EXPECT_THROW(dgemm(Trans::no, Trans::no, -1, 1, 1, 1.0, nullptr, 1, nullptr,
                     1, 1.0, &c, 1),
               InvalidArgument);
}

// ------------------------------------------------------------------ dsyrk

TEST(Dsyrk, MatchesReferenceOnLowerTriangle) {
  const int n = 6, k = 4;
  Rng rng(2);
  const Matrix a = Matrix::random(n, k, rng);
  const Matrix c0 = Matrix::random(n, n, rng);
  Matrix expected = matmul(a, a, false, true);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      expected(i, j) = -1.0 * expected(i, j) + 1.0 * c0(i, j);
    }
  }
  std::vector<double> cv = from_matrix(c0);
  dsyrk_lower(n, k, -1.0, a.data(), n, 1.0, cv.data(), n);
  const Matrix result = to_matrix(cv, n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      EXPECT_NEAR(result(i, j), expected(i, j), 1e-12);
    }
    // Upper triangle untouched.
    for (int i = 0; i < j; ++i) {
      EXPECT_DOUBLE_EQ(result(i, j), c0(i, j));
    }
  }
}

// ------------------------------------------------------------------ dtrsm

TEST(Dtrsm, SolvesRightLowerTranspose) {
  const int m = 5, n = 5;
  Rng rng(3);
  Matrix l = Matrix::random(n, n, rng);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < j; ++i) l(i, j) = 0.0;  // lower triangular
    l(j, j) += 4.0;                             // well conditioned
  }
  const Matrix b = Matrix::random(m, n, rng);
  std::vector<double> xv = from_matrix(b);
  dtrsm_right_lower_trans(m, n, l.data(), n, xv.data(), m);
  // Check X * Lᵀ == B.
  const Matrix x = to_matrix(xv, m, n);
  const Matrix reconstructed = matmul(x, l, false, true);
  EXPECT_LT(relative_error(reconstructed, b), 1e-12);
}

TEST(Dtrsm, RejectsSingularDiagonal) {
  double l[4] = {0.0, 1.0, 0.0, 1.0};  // L(0,0)=0
  double b[2] = {1.0, 1.0};
  EXPECT_THROW(dtrsm_right_lower_trans(1, 2, l, 2, b, 1), InvalidArgument);
}

// ----------------------------------------------------------------- dpotrf

TEST(Dpotrf, FactorsSpdMatrix) {
  const int n = 8;
  Rng rng(4);
  const Matrix a = Matrix::random_spd(n, rng);
  std::vector<double> av = from_matrix(a);
  ASSERT_EQ(dpotrf_lower(n, av.data(), n), 0);
  const Matrix l = lower_triangle(to_matrix(av, n, n));
  const Matrix llt = matmul(l, l, false, true);
  EXPECT_LT(relative_error(llt, a), 1e-12);
}

TEST(Dpotrf, DetectsNonSpd) {
  // Indefinite matrix: diag(1, -1).
  std::vector<double> a = {1.0, 0.0, 0.0, -1.0};
  EXPECT_EQ(dpotrf_lower(2, a.data(), 2), 2);
}

TEST(Dpotrf, DiagDominantGeneratorIsSpd) {
  Rng rng(5);
  const Matrix a = Matrix::random_diag_dominant(12, rng);
  std::vector<double> av = from_matrix(a);
  EXPECT_EQ(dpotrf_lower(12, av.data(), 12), 0);
}

// --------------------------------------------------------------- tile QR

TEST(Dgeqrt, ProducesUpperTriangularRAndOrthogonalQ) {
  const int nb = 8;
  Rng rng(6);
  const Matrix a0 = Matrix::random(nb, nb, rng);
  std::vector<double> a = from_matrix(a0);
  std::vector<double> t(static_cast<std::size_t>(nb) * nb, 0.0);
  dgeqrt(nb, a.data(), nb, t.data(), nb);

  // Reconstruct Q·R by applying Q (I - V T Vᵀ) to R.
  const Matrix r = upper_triangle(to_matrix(a, nb, nb));
  std::vector<double> qr = from_matrix(r);
  dormqr(ApplyTrans::no, nb, a.data(), nb, t.data(), nb, qr.data(), nb);
  EXPECT_LT(relative_error(to_matrix(qr, nb, nb), a0), 1e-12);
}

TEST(Dormqr, TransposeThenNoTransposeIsIdentity) {
  const int nb = 6;
  Rng rng(7);
  const Matrix a0 = Matrix::random(nb, nb, rng);
  std::vector<double> v = from_matrix(a0);
  std::vector<double> t(static_cast<std::size_t>(nb) * nb, 0.0);
  dgeqrt(nb, v.data(), nb, t.data(), nb);

  const Matrix c0 = Matrix::random(nb, nb, rng);
  std::vector<double> c = from_matrix(c0);
  dormqr(ApplyTrans::yes, nb, v.data(), nb, t.data(), nb, c.data(), nb);
  dormqr(ApplyTrans::no, nb, v.data(), nb, t.data(), nb, c.data(), nb);
  EXPECT_LT(relative_error(to_matrix(c, nb, nb), c0), 1e-12);
}

TEST(Dtsqrt, FactorsStackedPair) {
  const int nb = 6;
  Rng rng(8);
  // Top block: an upper-triangular R (as after dgeqrt); bottom: dense.
  Matrix top = upper_triangle(Matrix::random(nb, nb, rng));
  for (int j = 0; j < nb; ++j) top(j, j) += 2.0;
  const Matrix bottom = Matrix::random(nb, nb, rng);

  std::vector<double> r = from_matrix(top);
  std::vector<double> a2 = from_matrix(bottom);
  std::vector<double> t(static_cast<std::size_t>(nb) * nb, 0.0);
  dtsqrt(nb, r.data(), nb, a2.data(), nb, t.data(), nb);

  // Apply Q to [R_new; 0] and compare against the original stack.
  std::vector<double> c1 = r;  // R_new (upper triangular by construction)
  for (int j = 0; j < nb; ++j) {
    for (int i = j + 1; i < nb; ++i) c1[j * nb + i] = 0.0;
  }
  std::vector<double> c2(static_cast<std::size_t>(nb) * nb, 0.0);
  dtsmqr(ApplyTrans::no, nb, c1.data(), nb, c2.data(), nb, a2.data(), nb,
         t.data(), nb);
  EXPECT_LT(relative_error(to_matrix(c1, nb, nb), top), 1e-11);
  EXPECT_LT(relative_error(to_matrix(c2, nb, nb), bottom), 1e-11);
}

TEST(Dtsmqr, TransposeRoundTripIsIdentity) {
  const int nb = 5;
  Rng rng(9);
  Matrix top = upper_triangle(Matrix::random(nb, nb, rng));
  for (int j = 0; j < nb; ++j) top(j, j) += 2.0;
  const Matrix bottom = Matrix::random(nb, nb, rng);
  std::vector<double> r = from_matrix(top);
  std::vector<double> v2 = from_matrix(bottom);
  std::vector<double> t(static_cast<std::size_t>(nb) * nb, 0.0);
  dtsqrt(nb, r.data(), nb, v2.data(), nb, t.data(), nb);

  const Matrix b1_0 = Matrix::random(nb, nb, rng);
  const Matrix b2_0 = Matrix::random(nb, nb, rng);
  std::vector<double> b1 = from_matrix(b1_0);
  std::vector<double> b2 = from_matrix(b2_0);
  dtsmqr(ApplyTrans::yes, nb, b1.data(), nb, b2.data(), nb, v2.data(), nb,
         t.data(), nb);
  dtsmqr(ApplyTrans::no, nb, b1.data(), nb, b2.data(), nb, v2.data(), nb,
         t.data(), nb);
  EXPECT_LT(relative_error(to_matrix(b1, nb, nb), b1_0), 1e-11);
  EXPECT_LT(relative_error(to_matrix(b2, nb, nb), b2_0), 1e-11);
}

// ------------------------------------------------------------------ flops

TEST(Flops, CountsArePositiveAndScaleCubically) {
  EXPECT_DOUBLE_EQ(flops_dgemm(2, 3, 4), 48.0);
  EXPECT_GT(flops_dpotrf(10), 0.0);
  EXPECT_NEAR(flops_cholesky(300) / flops_cholesky(100), 27.0, 1.0);
  EXPECT_NEAR(flops_qr(200) / flops_qr(100), 8.0, 0.1);
  EXPECT_GT(flops_dtsmqr(8), flops_dtsqrt(8));
}

// ------------------------------------------------------------------ dense

TEST(Dense, TransposeAndNorms) {
  Rng rng(10);
  const Matrix a = Matrix::random(4, 3, rng);
  const Matrix at = transpose(a);
  EXPECT_EQ(at.rows(), 3);
  EXPECT_EQ(at.cols(), 4);
  EXPECT_DOUBLE_EQ(a(1, 2), at(2, 1));
  EXPECT_NEAR(frobenius_norm(a), frobenius_norm(at), 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(a, a), 0.0);
}

TEST(Dense, IdentityAndZero) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(frobenius_norm(Matrix::zero(5, 5)), 0.0);
}

TEST(Dense, MatmulRejectsMismatchedShapes) {
  Rng rng(11);
  const Matrix a = Matrix::random(2, 3, rng);
  const Matrix b = Matrix::random(4, 3, rng);
  EXPECT_THROW(matmul(a, b), InvalidArgument);
  EXPECT_NO_THROW(matmul(a, b, false, true));  // A (2x3) * Bᵀ (3x4)
}

}  // namespace
}  // namespace tasksim::linalg
