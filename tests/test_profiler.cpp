// Tests for the phase profiler: nested exclusive/inclusive attribution,
// cross-thread merge, the disabled fast path, overflow accounting, the
// sampler, and the JSON schema round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/profiler.hpp"
#include "support/timing.hpp"

namespace tasksim::prof {
namespace {

// Burn wall time without sleeping so both the wall and CPU clocks advance.
void spin_for_us(double us) {
  const double t0 = wall_time_us();
  while (wall_time_us() - t0 < us) {
  }
}

const PhaseStats& stats_of(const std::array<PhaseStats, kPhaseCount>& totals,
                           Phase phase) {
  return totals[static_cast<std::size_t>(phase)];
}

// ----------------------------------------------------------- static registry

TEST(Profiler, PhaseNamesRoundTripThroughParse) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    EXPECT_EQ(parse_phase(phase_name(phase)), phase) << phase_name(phase);
  }
  EXPECT_THROW(parse_phase("no.such.phase"), InvalidArgument);
}

TEST(Profiler, ExactlyTheTwoDocumentedRoots) {
  std::size_t roots = 0;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (phase_is_root(static_cast<Phase>(i))) ++roots;
  }
  EXPECT_EQ(roots, 2u);
  EXPECT_TRUE(phase_is_root(Phase::master_run));
  EXPECT_TRUE(phase_is_root(Phase::worker_iteration));
  EXPECT_FALSE(phase_is_root(Phase::task_body));
}

// ------------------------------------------------------------- disabled path

TEST(Profiler, DisabledScopesRecordNothing) {
  Profiler profiler;  // never enabled
  {
    ScopedPhase outer(profiler, Phase::master_run);
    ScopedPhase inner(profiler, Phase::submit);
    spin_for_us(100.0);
  }
  const ProfileSnapshot snap = profiler.snapshot();
  EXPECT_TRUE(snap.threads.empty());
  EXPECT_EQ(snap.scope_overflows, 0u);
  const auto totals = snap.totals();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    EXPECT_EQ(totals[i].count, 0u);
    EXPECT_DOUBLE_EQ(totals[i].excl_wall_us, 0.0);
  }
  EXPECT_DOUBLE_EQ(snap.coverage(), 0.0);
}

// --------------------------------------------------- nested excl/incl maths

TEST(Profiler, NestedScopesSplitExclusiveAndInclusiveTime) {
  Profiler profiler;
  profiler.enable();
  profiler.set_thread_name("master");
  {
    ScopedPhase root(profiler, Phase::master_run);
    spin_for_us(2000.0);  // exclusive to the root
    {
      ScopedPhase child(profiler, Phase::submit);
      spin_for_us(2000.0);  // exclusive to the child
    }
    spin_for_us(1000.0);  // exclusive to the root again
  }
  profiler.disable();

  const ProfileSnapshot snap = profiler.snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  EXPECT_EQ(snap.threads[0].name, "master");
  const auto totals = snap.totals();
  const PhaseStats& root = stats_of(totals, Phase::master_run);
  const PhaseStats& child = stats_of(totals, Phase::submit);

  EXPECT_EQ(root.count, 1u);
  EXPECT_EQ(child.count, 1u);
  // The spins bound the attribution from below; scheduling noise only adds.
  EXPECT_GE(root.excl_wall_us, 3000.0);
  EXPECT_GE(child.excl_wall_us, 2000.0);
  EXPECT_GE(root.incl_wall_us, 5000.0);
  // A leaf's inclusive and exclusive spans are the same interval.
  EXPECT_NEAR(child.incl_wall_us, child.excl_wall_us, 0.5);
  // The attribution identity: incl(parent) = excl(parent) + incl(children).
  EXPECT_NEAR(root.incl_wall_us, root.excl_wall_us + child.incl_wall_us, 0.5);
  // Spinning burns CPU, so the thread-CPU clock must have advanced too.
  EXPECT_GT(root.excl_cpu_us, 0.0);
  EXPECT_GT(child.excl_cpu_us, 0.0);
  // Coverage = child exclusive over root inclusive: 2ms of 5ms, plus noise.
  EXPECT_GT(snap.coverage(), 0.2);
  EXPECT_LE(snap.coverage(), 1.0);
}

TEST(Profiler, RepeatedScopesAccumulateCounts) {
  Profiler profiler;
  profiler.enable();
  {
    ScopedPhase root(profiler, Phase::master_run);
    for (int i = 0; i < 100; ++i) {
      ScopedPhase child(profiler, Phase::dependency);
    }
  }
  profiler.disable();
  const auto totals = profiler.snapshot().totals();
  EXPECT_EQ(stats_of(totals, Phase::dependency).count, 100u);
  EXPECT_EQ(stats_of(totals, Phase::master_run).count, 1u);
}

// -------------------------------------------------------- cross-thread merge

TEST(Profiler, MergesShardsAcrossThreads) {
  constexpr int kWorkers = 3;
  constexpr int kIterations = 50;
  // Coverage is a wall-clock ratio: on an oversubscribed (or 1-core) host
  // a worker descheduled between scope entries charges the gap to the
  // bracketing wall without attributing it, so a single run can land
  // under any fixed threshold.  Retry the measurement; the structural
  // invariants (thread shards, merged counts, coverage <= 1) are exact
  // and must hold on *every* attempt.
  double best_coverage = 0.0;
  for (int attempt = 0; attempt < 10 && best_coverage <= 0.5; ++attempt) {
    Profiler profiler;
    profiler.enable();
    profiler.set_thread_name("master");
    {
      ScopedPhase root(profiler, Phase::master_run);
      std::vector<std::thread> workers;
      for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&profiler, w] {
          profiler.set_thread_name("worker-" + std::to_string(w));
          for (int i = 0; i < kIterations; ++i) {
            ScopedPhase iteration(profiler, Phase::worker_iteration);
            ScopedPhase claim(profiler, Phase::claim);
            spin_for_us(20.0);
          }
        });
      }
      // Mirror the production shape: the master's wait is a non-root
      // phase, so its share of the root time counts as attributed.
      ScopedPhase wait(profiler, Phase::wait_all);
      for (auto& t : workers) t.join();
    }
    profiler.disable();

    const ProfileSnapshot snap = profiler.snapshot();
    ASSERT_EQ(snap.threads.size(), 1u + kWorkers);
    std::vector<std::string> names;
    for (const auto& thread : snap.threads) names.push_back(thread.name);
    EXPECT_NE(std::find(names.begin(), names.end(), "master"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "worker-0"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "worker-2"),
              names.end());

    const auto totals = snap.totals();
    EXPECT_EQ(stats_of(totals, Phase::worker_iteration).count,
              static_cast<std::uint64_t>(kWorkers) * kIterations);
    EXPECT_EQ(stats_of(totals, Phase::claim).count,
              static_cast<std::uint64_t>(kWorkers) * kIterations);
    EXPECT_LE(snap.coverage(), 1.0);
    best_coverage = std::max(best_coverage, snap.coverage());
  }
  // Every worker iteration spent essentially all its time inside `claim`,
  // and the master root is all scheduler-side wait: an undisturbed run
  // keeps coverage high.
  EXPECT_GT(best_coverage, 0.5);
}

// ------------------------------------------------------------ depth overflow

TEST(Profiler, ScopesBeyondMaxDepthAreDroppedAndCounted) {
  Profiler profiler;
  profiler.enable();
  {
    std::vector<std::unique_ptr<ScopedPhase>> scopes;
    for (std::size_t i = 0; i < kMaxScopeDepth + 2; ++i) {
      scopes.push_back(
          std::make_unique<ScopedPhase>(profiler, Phase::bookkeeping));
    }
    while (!scopes.empty()) scopes.pop_back();  // strict LIFO teardown
  }
  profiler.disable();
  const ProfileSnapshot snap = profiler.snapshot();
  EXPECT_EQ(snap.scope_overflows, 2u);
  EXPECT_EQ(snap.totals()[static_cast<std::size_t>(Phase::bookkeeping)].count,
            kMaxScopeDepth);
}

// ------------------------------------------------------------ enable / reset

TEST(Profiler, EnableRestartsCleanly) {
  Profiler profiler;
  profiler.enable();
  {
    ScopedPhase root(profiler, Phase::master_run);
    ScopedPhase child(profiler, Phase::submit);
    spin_for_us(50.0);
  }
  profiler.disable();
  EXPECT_EQ(profiler.snapshot().totals()[static_cast<std::size_t>(
                Phase::submit)].count,
            1u);

  profiler.enable();  // must zero the previous run's cells
  profiler.disable();
  const auto totals = profiler.snapshot().totals();
  EXPECT_EQ(stats_of(totals, Phase::submit).count, 0u);
  EXPECT_DOUBLE_EQ(stats_of(totals, Phase::submit).excl_wall_us, 0.0);
}

// ----------------------------------------------------------------- sampling

TEST(Profiler, SamplerRecordsMonotoneExclusiveTotals) {
  Profiler profiler;
  profiler.enable(/*sample_period_us=*/2000.0);
  {
    ScopedPhase root(profiler, Phase::master_run);
    ScopedPhase child(profiler, Phase::model_sample);
    spin_for_us(30000.0);
  }
  profiler.disable();
  const SampleSeries series = profiler.samples();
  ASSERT_GE(series.samples.size(), 1u);
  EXPECT_GT(series.t0_us, 0.0);
  double prev = 0.0;
  for (const auto& sample : series.samples) {
    EXPECT_GE(sample.wall_us, series.t0_us);
    const double excl =
        sample.excl_wall_us[static_cast<std::size_t>(Phase::model_sample)];
    EXPECT_GE(excl, prev);  // cumulative totals never decrease
    prev = excl;
  }
}

// ----------------------------------------------------------- JSON round-trip

TEST(Profiler, JsonRoundTripPreservesEverything) {
  Profiler profiler;
  profiler.enable();
  profiler.set_thread_name("master");
  {
    ScopedPhase root(profiler, Phase::master_run);
    spin_for_us(500.0);
    {
      ScopedPhase child(profiler, Phase::teq_wait);
      spin_for_us(500.0);
    }
    std::thread worker([&profiler] {
      profiler.set_thread_name("worker-0");
      ScopedPhase iteration(profiler, Phase::worker_iteration);
      ScopedPhase body(profiler, Phase::task_body);
      spin_for_us(500.0);
    });
    worker.join();
  }
  profiler.disable();

  const ProfileSnapshot snap = profiler.snapshot();
  const ProfileSnapshot parsed = parse_profile_json(snap.to_json());

  EXPECT_NEAR(parsed.enabled_for_us, snap.enabled_for_us, 1e-6);
  EXPECT_EQ(parsed.scope_overflows, snap.scope_overflows);
  ASSERT_EQ(parsed.threads.size(), snap.threads.size());
  for (std::size_t t = 0; t < snap.threads.size(); ++t) {
    EXPECT_EQ(parsed.threads[t].name, snap.threads[t].name);
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const PhaseStats& a = snap.threads[t].phases[i];
      const PhaseStats& b = parsed.threads[t].phases[i];
      EXPECT_EQ(a.count, b.count);
      EXPECT_NEAR(a.excl_wall_us, b.excl_wall_us, 1e-6);
      EXPECT_NEAR(a.incl_wall_us, b.incl_wall_us, 1e-6);
      EXPECT_NEAR(a.excl_cpu_us, b.excl_cpu_us, 1e-6);
      EXPECT_NEAR(a.incl_cpu_us, b.incl_cpu_us, 1e-6);
    }
  }
  // Derived metrics survive the round-trip too.
  EXPECT_NEAR(parsed.coverage(), snap.coverage(), 1e-9);
}

TEST(Profiler, ParseRejectsMalformedAndForeignDocuments) {
  EXPECT_THROW(parse_profile_json(""), InvalidArgument);
  EXPECT_THROW(parse_profile_json("{"), InvalidArgument);
  EXPECT_THROW(parse_profile_json("{\"schema\":\"something-else\"}"),
               InvalidArgument);
}

TEST(Profiler, EmptySnapshotRoundTrips) {
  Profiler profiler;
  profiler.enable();
  profiler.disable();
  const ProfileSnapshot parsed =
      parse_profile_json(profiler.snapshot().to_json());
  EXPECT_TRUE(parsed.threads.empty());
  EXPECT_EQ(parsed.scope_overflows, 0u);
}

}  // namespace
}  // namespace tasksim::prof
