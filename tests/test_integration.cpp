// End-to-end integration tests: the full paper pipeline (real run →
// calibrate → simulate → compare) across schedulers and algorithms, plus
// cross-module consistency checks (DAG capture vs task-count formulas,
// simulated trace vs captured dependences).
#include <gtest/gtest.h>

#include "dag/algorithms.hpp"
#include "harness/experiment.hpp"
#include "linalg/tile_cholesky.hpp"
#include "linalg/tile_qr.hpp"
#include "sched/factory.hpp"
#include "sched/observers.hpp"
#include "sched/submitter.hpp"
#include "sim/dag_replay.hpp"
#include "sim/sim_submitter.hpp"
#include "trace/analysis.hpp"

namespace tasksim {
namespace {

struct Case {
  const char* scheduler;
  harness::Algorithm algorithm;
};

class PipelineTest : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    SchedulersAndAlgorithms, PipelineTest,
    ::testing::Values(Case{"quark", harness::Algorithm::cholesky},
                      Case{"quark", harness::Algorithm::qr},
                      Case{"starpu/dmda", harness::Algorithm::cholesky},
                      Case{"starpu/dmda", harness::Algorithm::qr},
                      Case{"ompss/bf", harness::Algorithm::cholesky},
                      Case{"ompss/bf", harness::Algorithm::qr}),
    [](const auto& info) {
      std::string name = info.param.scheduler;
      for (char& c : name) {
        if (c == '/') c = '_';
      }
      return name + "_" + to_string(info.param.algorithm);
    });

TEST_P(PipelineTest, RealAndSimulatedAgreeInShape) {
  harness::ExperimentConfig config;
  config.scheduler = GetParam().scheduler;
  config.algorithm = GetParam().algorithm;
  config.n = 160;
  config.nb = 32;
  config.workers = 3;

  sim::CalibrationObserver calibration;
  const harness::RunResult real = harness::run_real(config, &calibration);
  const sim::KernelModelSet models =
      calibration.fit(sim::ModelFamily::best);
  const harness::RunResult sim = harness::run_simulated(config, models);

  ASSERT_EQ(real.tasks, sim.tasks);
  EXPECT_GT(real.makespan_us, 0.0);
  EXPECT_GT(sim.makespan_us, 0.0);
  // Shape agreement on a noisy 1-core host: same order of magnitude and a
  // bounded relative gap (the realistic-size benches show the few-percent
  // regime; tiny problems are noisier).
  const double err =
      std::abs(sim.makespan_us - real.makespan_us) / real.makespan_us;
  EXPECT_LT(err, 0.6) << "real=" << real.makespan_us
                      << " sim=" << sim.makespan_us;

  // Per-kernel task counts in the two traces must match exactly: the
  // scheduler executed the same task graph.
  const auto real_stats = trace::analyze(real.timeline);
  const auto sim_stats = trace::analyze(sim.timeline);
  ASSERT_EQ(real_stats.kernels.size(), sim_stats.kernels.size());
  for (const auto& [kernel, ks] : real_stats.kernels) {
    ASSERT_TRUE(sim_stats.kernels.count(kernel)) << kernel;
    EXPECT_EQ(ks.count, sim_stats.kernels.at(kernel).count) << kernel;
  }
}

TEST_P(PipelineTest, SimulatedTraceRespectsCapturedDag) {
  harness::ExperimentConfig config;
  config.scheduler = GetParam().scheduler;
  config.algorithm = GetParam().algorithm;
  config.n = 128;
  config.nb = 32;
  config.workers = 3;

  sim::KernelModelSet models;
  for (const char* kernel : {"dpotrf", "dtrsm", "dsyrk", "dgemm", "dgeqrt",
                             "dormqr", "dtsqrt", "dtsmqr"}) {
    models.set_model(kernel, std::make_unique<stats::UniformDist>(20.0, 80.0));
  }

  linalg::TileMatrix a(config.n, config.nb);
  linalg::TileMatrix t(config.n, config.nb);
  sched::RuntimeConfig rc;
  rc.workers = config.workers;
  auto rt = sched::make_runtime(config.scheduler, rc);
  sched::DagCaptureObserver capture;
  rt->add_observer(&capture);
  sim::SimEngine engine(models);
  sim::SimSubmitter submitter(*rt, engine);
  if (config.algorithm == harness::Algorithm::cholesky) {
    linalg::tile_cholesky(a, submitter);
  } else {
    linalg::tile_qr(a, t, submitter);
  }
  rt->remove_observer(&capture);

  std::vector<double> start(capture.graph().node_count());
  std::vector<double> end(capture.graph().node_count());
  for (const auto& e : engine.trace().events()) {
    start[e.task_id] = e.start_us;
    end[e.task_id] = e.end_us;
  }
  for (const auto& edge : capture.graph().edges()) {
    EXPECT_GE(start[edge.to] + 1e-9, end[edge.from]);
  }
}

TEST(Integration, DagCaptureMatchesTaskCountFormulas) {
  for (int nt : {2, 3, 5}) {
    const int nb = 16;
    linalg::TileMatrix a(nt * nb, nb);
    linalg::TileMatrix t(nt * nb, nb);
    sched::RuntimeConfig rc;
    rc.workers = 1;
    {
      auto rt = sched::make_runtime("quark", rc);
      sched::DagCaptureObserver capture;
      rt->add_observer(&capture);
      sim::KernelModelSet models;
      for (const char* k : {"dgeqrt", "dormqr", "dtsqrt", "dtsmqr"}) {
        models.set_model(k, std::make_unique<stats::ConstantDist>(1.0));
      }
      sim::SimEngine engine(models);
      sim::SimSubmitter submitter(*rt, engine);
      linalg::tile_qr(a, t, submitter);
      EXPECT_EQ(capture.graph().node_count(), linalg::qr_task_count(nt));
      rt->remove_observer(&capture);
    }
  }
}

TEST(Integration, SchedulerInLoopBeatsOrMatchesDagReplayStructure) {
  // Build the Cholesky DAG and compare the baseline pure-DES replay with
  // the scheduler-in-the-loop simulation under identical constant kernel
  // times.  With constant times and a greedy scheduler both are valid
  // schedules; the scheduler-in-the-loop makespan must be at least the
  // DAG's critical path and at most the serial sum.
  const int nt = 5, nb = 16;
  linalg::TileMatrix a(nt * nb, nb);
  sim::KernelModelSet models;
  for (const char* k : {"dpotrf", "dtrsm", "dsyrk", "dgemm"}) {
    models.set_model(k, std::make_unique<stats::ConstantDist>(50.0));
  }

  sched::RuntimeConfig rc;
  rc.workers = 3;
  auto rt = sched::make_runtime("quark", rc);
  sched::DagCaptureObserver capture;
  rt->add_observer(&capture);
  sim::SimEngine engine(models);
  sim::SimSubmitter submitter(*rt, engine);
  linalg::tile_cholesky(a, submitter);
  rt->remove_observer(&capture);

  dag::TaskGraph graph = capture.take_graph();
  for (dag::NodeId id = 0; id < graph.node_count(); ++id) {
    graph.mutable_node(id).weight_us = 50.0;
  }
  const double critical = dag::critical_path(graph).length_us;
  const double serial = 50.0 * static_cast<double>(graph.node_count());
  const double sim_makespan = engine.trace().makespan_us();
  EXPECT_GE(sim_makespan + 1e-6, critical);
  EXPECT_LE(sim_makespan, serial + 1e-6);

  sim::DagReplayOptions options;
  options.workers = 3;
  const auto baseline = replay_dag(graph, sim::weight_duration_fn(), options);
  EXPECT_GE(baseline.makespan_us + 1e-6, critical);
  // Both are within the same structural bounds.
  EXPECT_LE(baseline.makespan_us, serial + 1e-6);
}

TEST(Integration, SimulationIsFasterThanRealAtScale) {
  // The paper's "Accelerated Simulation Time" contribution.
  harness::ExperimentConfig config;
  config.scheduler = "quark";
  config.algorithm = harness::Algorithm::cholesky;
  config.n = 288;
  config.nb = 48;
  config.workers = 2;
  sim::CalibrationObserver calibration;
  const harness::RunResult real = harness::run_real(config, &calibration);
  const harness::RunResult sim =
      harness::run_simulated(config, calibration.fit(sim::ModelFamily::best));
  EXPECT_LT(sim.wall_us, real.wall_us);
}

}  // namespace
}  // namespace tasksim
