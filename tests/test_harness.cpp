// Tests for the experiment harness: the calibrate→run→simulate→compare
// pipeline, report tables, and the autotuner.
#include <gtest/gtest.h>

#include <cstdio>

#include "harness/autotune.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "linalg/tile_cholesky.hpp"
#include "support/error.hpp"
#include "trace/text_io.hpp"

namespace tasksim::harness {
namespace {

ExperimentConfig small_config(Algorithm algorithm, const std::string& sched) {
  ExperimentConfig config;
  config.algorithm = algorithm;
  config.scheduler = sched;
  config.n = 96;
  config.nb = 24;
  config.workers = 2;
  config.verify_numerics = true;
  return config;
}

TEST(Experiment, AlgorithmParseAndNames) {
  EXPECT_EQ(parse_algorithm("cholesky"), Algorithm::cholesky);
  EXPECT_EQ(parse_algorithm("qr"), Algorithm::qr);
  EXPECT_EQ(parse_algorithm("lu"), Algorithm::lu);
  EXPECT_THROW(parse_algorithm("svd"), InvalidArgument);
  EXPECT_STREQ(to_string(Algorithm::qr), "qr");
  EXPECT_STREQ(to_string(Algorithm::lu), "lu");
}

TEST(Experiment, FlopsFormulas) {
  ExperimentConfig config;
  config.n = 100;
  config.algorithm = Algorithm::cholesky;
  EXPECT_NEAR(algorithm_flops(config), 100.0 * 100 * 100 / 3.0, 6000.0);
  config.algorithm = Algorithm::qr;
  EXPECT_NEAR(algorithm_flops(config), 4.0 / 3.0 * 1e6, 1e3);
}

TEST(Experiment, InputMatrixShapes) {
  ExperimentConfig config;
  config.n = 48;
  config.nb = 12;
  config.algorithm = Algorithm::cholesky;
  const auto spd = make_input_matrix(config);
  EXPECT_EQ(spd.n(), 48);
  EXPECT_EQ(spd.tiles(), 4);
  config.algorithm = Algorithm::qr;
  const auto general = make_input_matrix(config);
  EXPECT_EQ(general.tile_size(), 12);
}

TEST(Experiment, RealRunVerifiesAndProducesTimeline) {
  const RunResult result =
      run_real(small_config(Algorithm::cholesky, "quark"));
  EXPECT_GT(result.makespan_us, 0.0);
  EXPECT_GT(result.gflops, 0.0);
  EXPECT_EQ(result.tasks, linalg::cholesky_task_count(4));
  ASSERT_TRUE(result.residual.has_value());
  EXPECT_LT(*result.residual, 1e-12);
  EXPECT_EQ(result.timeline.size(), result.tasks);
}

TEST(Experiment, SimulatedRunUsesModels) {
  sim::KernelModelSet models;
  for (const char* kernel : {"dpotrf", "dtrsm", "dsyrk", "dgemm"}) {
    models.set_model(kernel, std::make_unique<stats::ConstantDist>(100.0));
  }
  ExperimentConfig config = small_config(Algorithm::cholesky, "quark");
  config.verify_numerics = false;
  const RunResult result = run_simulated(config, models);
  EXPECT_EQ(result.tasks, linalg::cholesky_task_count(4));
  for (const auto& e : result.timeline.events()) {
    EXPECT_DOUBLE_EQ(e.duration_us(), 100.0);
  }
  EXPECT_EQ(result.quiescence_timeouts, 0u);
}

TEST(Experiment, ProfiledSimulatedRunAttachesSnapshot) {
  sim::KernelModelSet models;
  for (const char* kernel : {"dpotrf", "dtrsm", "dsyrk", "dgemm"}) {
    models.set_model(kernel, std::make_unique<stats::ConstantDist>(100.0));
  }
  ExperimentConfig config = small_config(Algorithm::cholesky, "quark");
  config.verify_numerics = false;
  config.profile = true;
  const RunResult result = run_simulated(config, models);
  ASSERT_TRUE(result.profile != nullptr);
  const prof::ProfileSnapshot& snap = *result.profile;
  EXPECT_GT(snap.enabled_for_us, 0.0);
  // Master plus both workers left named shards behind.
  ASSERT_GE(snap.threads.size(), 3u);
  bool saw_master = false, saw_worker = false;
  for (const auto& thread : snap.threads) {
    saw_master = saw_master || thread.name == "master";
    saw_worker = saw_worker || thread.name.rfind("worker-", 0) == 0;
  }
  EXPECT_TRUE(saw_master);
  EXPECT_TRUE(saw_worker);
  const auto totals = snap.totals();
  EXPECT_EQ(totals[static_cast<std::size_t>(prof::Phase::task_body)].count,
            result.tasks);
  EXPECT_GT(snap.coverage(), 0.0);
  EXPECT_LE(snap.coverage(), 1.0);
  // The profiler was disabled on return: a later unprofiled run is inert.
  EXPECT_FALSE(prof::Profiler::global().enabled());
  // The stable JSON document embeds in the run report.
  const std::string json = run_result_json(config, result);
  EXPECT_NE(json.find("\"tasksim-run-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"tasksim-profile-v1\""), std::string::npos);
}

TEST(Experiment, ReferenceTraceAttachesComparison) {
  sim::KernelModelSet models;
  for (const char* kernel : {"dpotrf", "dtrsm", "dsyrk", "dgemm"}) {
    models.set_model(kernel, std::make_unique<stats::ConstantDist>(50.0));
  }
  ExperimentConfig config = small_config(Algorithm::cholesky, "quark");
  config.verify_numerics = false;
  const RunResult reference = run_simulated(config, models);
  const std::string path = "test_harness_reference.trace";
  trace::save_trace(reference.timeline, path);

  config.reference_trace = path;
  const RunResult result = run_simulated(config, models);
  std::remove(path.c_str());
  ASSERT_TRUE(result.comparison != nullptr);
  EXPECT_EQ(result.comparison->matched_tasks, result.tasks);
  // Identical models and seed: the comparison is against an equal run.
  EXPECT_NEAR(result.comparison->makespan_error_pct, 0.0, 1e-9);
  const std::string json = run_result_json(config, result);
  EXPECT_NE(json.find("\"comparison\""), std::string::npos);
  EXPECT_NE(json.find("\"start_order_tau\""), std::string::npos);
}

TEST(Experiment, ProfileSampleRequiresProfile) {
  ExperimentConfig config = small_config(Algorithm::cholesky, "quark");
  config.profile_sample_us = 100.0;  // without profile=true
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(Experiment, CalibrateProducesModelsForAllKernels) {
  ExperimentConfig config = small_config(Algorithm::qr, "quark");
  config.verify_numerics = false;
  const sim::KernelModelSet models =
      calibrate(config, sim::ModelFamily::best);
  for (const char* kernel : {"dgeqrt", "dormqr", "dtsqrt", "dtsmqr"}) {
    EXPECT_TRUE(models.has_model(kernel)) << kernel;
    EXPECT_GT(models.mean_us(kernel), 0.0);
  }
}

TEST(Experiment, ComparePipelineProducesBoundedError) {
  ExperimentConfig config = small_config(Algorithm::cholesky, "ompss/bf");
  config.n = 144;
  config.verify_numerics = false;
  const ComparisonRow row =
      compare_real_vs_sim(config, sim::ModelFamily::best);
  EXPECT_EQ(row.n, 144);
  EXPECT_GT(row.real_gflops, 0.0);
  EXPECT_GT(row.sim_gflops, 0.0);
  // Tiny problems are the paper's worst case (~16%); allow generous slack
  // on a noisy shared host, but a sign-correct, same-order prediction.
  EXPECT_LT(std::abs(row.error_pct), 60.0);
  EXPECT_GT(row.sim_makespan_us, 0.0);
  EXPECT_GT(row.real_wall_us, 0.0);
}

TEST(Experiment, CompareWithPreCalibratedModels) {
  ExperimentConfig calib_config = small_config(Algorithm::cholesky, "quark");
  calib_config.verify_numerics = false;
  const sim::KernelModelSet models =
      calibrate(calib_config, sim::ModelFamily::lognormal);
  ExperimentConfig config = calib_config;
  config.n = 192;  // predict a larger size from small-problem calibration
  const ComparisonRow row =
      compare_real_vs_sim(config, sim::ModelFamily::lognormal, &models);
  EXPECT_GT(row.sim_gflops, 0.0);
  EXPECT_LT(std::abs(row.error_pct), 60.0);
}

// ------------------------------------------------------------------ table

TEST(Report, TableAlignsColumns) {
  TextTable table;
  table.set_headers({"a", "long-header", "c"});
  table.add_row({"1", "2", "3"});
  table.add_row({"wide-cell", "x", "y"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // All lines (except the underline) have equal prefix alignment: every
  // row contains the separator double-space.
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Report, TableRejectsRaggedRows) {
  TextTable table;
  table.set_headers({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

TEST(Report, MetricsTableSkipsZeroValuedByDefault) {
  metrics::Snapshot snap;
  snap.counters["active"] = 5;
  snap.counters["idle"] = 0;
  snap.gauges["depth"] = 2.0;
  metrics::HistogramStats hist;
  hist.count = 2;
  hist.sum = 3.0;
  hist.buckets[4] = 2;
  snap.histograms["wait_us"] = hist;
  snap.histograms["never"] = {};

  const TextTable table = metrics_table(snap);
  const std::string out = table.to_string();
  EXPECT_EQ(table.row_count(), 3u);  // idle and never skipped
  EXPECT_NE(out.find("active"), std::string::npos);
  EXPECT_EQ(out.find("idle"), std::string::npos);
  EXPECT_NE(out.find("wait_us"), std::string::npos);
  EXPECT_NE(out.find("mean=1.50"), std::string::npos);

  const TextTable all = metrics_table(snap, /*include_zero=*/true);
  EXPECT_EQ(all.row_count(), 5u);
}

// --------------------------------------------------------------- autotune

TEST(Autotune, PicksACandidateAndReportsAll) {
  ExperimentConfig base;
  base.algorithm = Algorithm::cholesky;
  base.scheduler = "quark";
  base.n = 240;
  base.workers = 2;
  AutotuneOptions options;
  options.calibration_tiles = 3;
  const AutotuneResult result =
      autotune_tile_size(base, {24, 48, 80}, options);
  EXPECT_EQ(result.candidates.size(), 3u);
  EXPECT_GT(result.best_nb, 0);
  EXPECT_GT(result.best_predicted_gflops, 0.0);
  for (const auto& c : result.candidates) {
    EXPECT_EQ(c.n_used % c.nb, 0);
    EXPECT_GT(c.predicted_gflops, 0.0);
  }
}

TEST(Autotune, SkipsOversizedTiles) {
  ExperimentConfig base;
  base.algorithm = Algorithm::cholesky;
  base.scheduler = "quark";
  base.n = 64;
  base.workers = 2;
  AutotuneOptions options;
  options.calibration_tiles = 2;
  const AutotuneResult result = autotune_tile_size(base, {32, 128}, options);
  ASSERT_EQ(result.candidates.size(), 2u);
  EXPECT_DOUBLE_EQ(result.candidates[1].predicted_gflops, 0.0);  // 128 > 64
  EXPECT_EQ(result.best_nb, 32);
}

TEST(Autotune, RejectsEmptyCandidates) {
  ExperimentConfig base;
  EXPECT_THROW(autotune_tile_size(base, {}), InvalidArgument);
}

}  // namespace
}  // namespace tasksim::harness
