// Tests for the metrics registry: counters, gauges, histograms,
// thread-local sharding, snapshots, and the JSON dump.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/metrics.hpp"

namespace tasksim::metrics {
namespace {

// ---------------------------------------------------------------- counters

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  Registry reg;
  Counter c = reg.counter("c");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, SameNameReturnsSameMetric) {
  Registry reg;
  Counter a = reg.counter("shared");
  Counter b = reg.counter("shared");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
}

TEST(Metrics, CounterMergesAcrossThreads) {
  Registry reg;
  Counter c = reg.counter("mt");
  constexpr int kThreads = 8;
  constexpr int kIncs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(Metrics, RegistriesAreIndependent) {
  Registry a, b;
  a.counter("x").inc(1);
  b.counter("x").inc(2);
  EXPECT_EQ(a.counter("x").value(), 1u);
  EXPECT_EQ(b.counter("x").value(), 2u);
}

TEST(Metrics, CounterCapacityIsEnforcedAtRegistration) {
  Registry reg;
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  EXPECT_THROW(reg.counter("one_too_many"), InvalidArgument);
  // Existing names still resolve.
  reg.counter("c0").inc();
  EXPECT_EQ(reg.counter("c0").value(), 1u);
}

// ------------------------------------------------------------------ gauges

TEST(Metrics, GaugeSetAddValue) {
  Registry reg;
  Gauge g = reg.gauge("depth");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

// -------------------------------------------------------------- histograms

TEST(Metrics, HistogramBucketBoundsAreGeometric) {
  EXPECT_DOUBLE_EQ(histogram_bucket_upper(0), 0.25);
  EXPECT_DOUBLE_EQ(histogram_bucket_upper(1), 0.5);
  EXPECT_DOUBLE_EQ(histogram_bucket_upper(2), 1.0);
  for (std::size_t i = 1; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_DOUBLE_EQ(histogram_bucket_upper(i),
                     2.0 * histogram_bucket_upper(i - 1));
  }
  EXPECT_TRUE(std::isinf(histogram_bucket_upper(kHistogramBuckets - 1)));
}

TEST(Metrics, HistogramCountsSumAndBuckets) {
  Registry reg;
  Histogram h = reg.histogram("lat");
  h.observe(0.1);    // bucket 0 (<= 0.25)
  h.observe(0.75);   // bucket 2 (<= 1.0)
  h.observe(1e9);    // overflow bucket
  const auto snap = reg.snapshot();
  const HistogramStats& stats = snap.histograms.at("lat");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_NEAR(stats.sum, 0.1 + 0.75 + 1e9, 1e-3);
  EXPECT_EQ(stats.buckets[0], 1u);
  EXPECT_EQ(stats.buckets[2], 1u);
  EXPECT_EQ(stats.buckets[kHistogramBuckets - 1], 1u);
}

TEST(Metrics, HistogramQuantileInterpolatesWithinBucket) {
  HistogramStats stats;
  stats.count = 4;
  stats.buckets[0] = 2;  // [0, 0.25]
  stats.buckets[3] = 2;  // (1.0, 2.0]
  // Rank 1 of 2 in bucket 0: halfway through [0, 0.25].
  EXPECT_DOUBLE_EQ(stats.quantile(0.0), 0.125);
  EXPECT_DOUBLE_EQ(stats.quantile(0.25), 0.125);
  // Rank 2 of 2: the bucket's upper bound.
  EXPECT_DOUBLE_EQ(stats.quantile(0.5), 0.25);
  // Rank 3 = rank 1 of 2 in bucket 3: halfway through (1.0, 2.0].
  EXPECT_DOUBLE_EQ(stats.quantile(0.75), 1.5);
  EXPECT_DOUBLE_EQ(stats.quantile(1.0), 2.0);
  EXPECT_DOUBLE_EQ(HistogramStats{}.quantile(0.5), 0.0);  // empty
}

TEST(Metrics, HistogramQuantileIsMonotoneAndWithinOneBucket) {
  Registry reg;
  Histogram h = reg.histogram("q");
  // 100 observations of 3.0 land in the (2.0, 4.0] bucket: every quantile
  // must stay inside that bucket (the documented resolution guarantee).
  for (int i = 0; i < 100; ++i) h.observe(3.0);
  const auto stats = reg.snapshot().histograms.at("q");
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = stats.quantile(q);
    EXPECT_GT(v, 2.0);
    EXPECT_LE(v, 4.0);
    EXPECT_GE(v, prev);  // monotone in q
    prev = v;
  }
}

TEST(Metrics, HistogramQuantileOverflowBucketReportsLowerBound) {
  HistogramStats stats;
  stats.count = 1;
  stats.buckets[kHistogramBuckets - 1] = 1;
  // The overflow bucket is unbounded, so interpolation is impossible; the
  // estimate must still be finite.
  const double v = stats.quantile(1.0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_DOUBLE_EQ(v, histogram_bucket_upper(kHistogramBuckets - 2));
}

TEST(Metrics, HistogramMergesAcrossThreads) {
  Registry reg;
  Histogram h = reg.histogram("mt");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.observe(1.0);
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = reg.snapshot().histograms.at("mt");
  EXPECT_EQ(stats.count, 4000u);
  EXPECT_NEAR(stats.sum, 4000.0, 1e-6);
}

// --------------------------------------------------------- snapshot / reset

TEST(Metrics, SnapshotContainsEverythingRegistered) {
  Registry reg;
  reg.counter("a").inc(7);
  reg.gauge("b").set(1.5);
  reg.histogram("c").observe(3.0);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("b"), 1.5);
  EXPECT_EQ(snap.histograms.at("c").count, 1u);
}

TEST(Metrics, ResetZeroesValuesButKeepsNames) {
  Registry reg;
  Counter c = reg.counter("a");
  c.inc(5);
  reg.gauge("g").set(2.0);
  reg.histogram("h").observe(1.0);
  reg.reset();
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 0.0);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
  // Handles issued before the reset keep working.
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(Metrics, SnapshotToJsonIsWellFormedEnough) {
  Registry reg;
  reg.counter("tasks").inc(12);
  reg.gauge("depth").set(3.0);
  reg.histogram("wait_us").observe(0.2);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"tasks\""), std::string::npos);
  EXPECT_NE(json.find("12"), std::string::npos);
  EXPECT_NE(json.find("\"depth\""), std::string::npos);
  EXPECT_NE(json.find("\"wait_us\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Balanced braces — cheap structural sanity check.
  long depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Metrics, GlobalRegistryFreeFunctions) {
  // The global registry is shared process state: use unique names and
  // deltas so this test is independent of everything else that ran.
  Counter c = counter("test_metrics.global_counter");
  const std::uint64_t before = c.value();
  c.inc(3);
  EXPECT_EQ(c.value(), before + 3);
  EXPECT_EQ(snapshot().counters.at("test_metrics.global_counter"),
            before + 3);
}

// ------------------------------------------------------------------- merge

TEST(Metrics, HistogramStatsMergeSumsCountsAndBuckets) {
  Registry a, b;
  a.histogram("h").observe(0.1);   // bucket 0
  a.histogram("h").observe(3.0);   // bucket 4 (2.0, 4.0]
  b.histogram("h").observe(3.0);
  b.histogram("h").observe(1e9);   // overflow
  HistogramStats merged = a.snapshot().histograms.at("h");
  merged.merge(b.snapshot().histograms.at("h"));
  EXPECT_EQ(merged.count, 4u);
  EXPECT_NEAR(merged.sum, 0.1 + 3.0 + 3.0 + 1e9, 1e-3);
  EXPECT_EQ(merged.buckets[0], 1u);
  EXPECT_EQ(merged.buckets[4], 2u);
  EXPECT_EQ(merged.buckets[kHistogramBuckets - 1], 1u);
}

TEST(Metrics, HistogramMergeQuantilesReflectThePooledSample) {
  // 99 fast observations in one registry, 1 slow one in another: the
  // merged p50 must be in the fast bucket, the merged p99+ in the slow.
  Registry fast, slow;
  for (int i = 0; i < 99; ++i) fast.histogram("h").observe(0.2);
  slow.histogram("h").observe(100.0);
  HistogramStats merged = fast.snapshot().histograms.at("h");
  merged.merge(slow.snapshot().histograms.at("h"));
  EXPECT_LE(merged.quantile(0.5), 0.25);
  EXPECT_GT(merged.quantile(0.999), 50.0);
}

TEST(Metrics, HistogramMergeDefaultFingerprintMeansCompiledLayout) {
  // Hand-built stats (fingerprint 0) merge with snapshot-stamped stats:
  // both resolve to the compiled-in layout.
  Registry reg;
  reg.histogram("h").observe(1.0);
  const HistogramStats stamped = reg.snapshot().histograms.at("h");
  EXPECT_EQ(stamped.bounds_fingerprint, histogram_bounds_fingerprint());
  HistogramStats hand;
  hand.count = 1;
  hand.buckets[0] = 1;
  hand.merge(stamped);
  EXPECT_EQ(hand.count, 2u);
  EXPECT_EQ(hand.bounds_fingerprint, histogram_bounds_fingerprint());
}

TEST(Metrics, HistogramMergeRejectsForeignBucketLayout) {
  HistogramStats ours;
  HistogramStats theirs;
  theirs.bounds_fingerprint = histogram_bounds_fingerprint() + 1;
  EXPECT_THROW(ours.merge(theirs), InvalidArgument);
  // A failed merge must not have mutated the destination.
  EXPECT_EQ(ours.count, 0u);
}

TEST(Metrics, SnapshotMergeCountersSumGaugesLastWriteWins) {
  Registry a, b;
  a.counter("shared").inc(3);
  a.counter("only_a").inc(1);
  a.gauge("depth").set(5.0);
  b.counter("shared").inc(4);
  b.counter("only_b").inc(2);
  b.gauge("depth").set(9.0);
  b.histogram("h").observe(1.0);
  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counters.at("shared"), 7u);
  EXPECT_EQ(merged.counters.at("only_a"), 1u);
  EXPECT_EQ(merged.counters.at("only_b"), 2u);
  // Gauges are levels, not accumulators: the merged-in value replaces ours.
  EXPECT_DOUBLE_EQ(merged.gauges.at("depth"), 9.0);
  // A histogram present on one side only is inserted as-is.
  EXPECT_EQ(merged.histograms.at("h").count, 1u);
}

TEST(Metrics, SnapshotMergeIsAssociativeForCounters) {
  Registry a, b, c;
  a.counter("n").inc(1);
  b.counter("n").inc(2);
  c.counter("n").inc(4);
  Snapshot left = a.snapshot();
  left.merge(b.snapshot());
  left.merge(c.snapshot());
  Snapshot right = b.snapshot();
  right.merge(c.snapshot());
  Snapshot total = a.snapshot();
  total.merge(right);
  EXPECT_EQ(left.counters.at("n"), 7u);
  EXPECT_EQ(total.counters.at("n"), 7u);
}

// The shard cache is keyed by registry id, not address: a registry created
// at a reused address must not see the previous registry's shards.
TEST(Metrics, RegistryAddressReuseDoesNotAliasShards) {
  for (int round = 0; round < 4; ++round) {
    auto reg = std::make_unique<Registry>();
    Counter c = reg->counter("x");
    c.inc(1);  // touches this thread's shard cache
    EXPECT_EQ(c.value(), 1u) << "round " << round;
  }
}

}  // namespace
}  // namespace tasksim::metrics
