// Tests for the DAG library: hazard-derived construction, algorithms, DOT.
#include <gtest/gtest.h>

#include <set>

#include "dag/algorithms.hpp"
#include "dag/builder.hpp"
#include "dag/dot_export.hpp"
#include "dag/graph.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace tasksim::dag {
namespace {

// ------------------------------------------------------------------ graph

TEST(Graph, AddNodesAndEdges) {
  TaskGraph g;
  const NodeId a = g.add_node("a", 10.0);
  const NodeId b = g.add_node("b", 20.0);
  g.add_edge(a, b, DepKind::raw);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.successors(a), std::vector<NodeId>{b});
  EXPECT_EQ(g.predecessors(b), std::vector<NodeId>{a});
  EXPECT_EQ(g.roots(), std::vector<NodeId>{a});
  EXPECT_EQ(g.leaves(), std::vector<NodeId>{b});
}

TEST(Graph, RejectsBackwardEdges) {
  TaskGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  EXPECT_THROW(g.add_edge(b, a, DepKind::raw), InvalidArgument);
  EXPECT_THROW(g.add_edge(a, a, DepKind::raw), InvalidArgument);
  EXPECT_THROW(g.add_edge(a, 99, DepKind::raw), InvalidArgument);
}

TEST(Graph, DepKindNames) {
  EXPECT_STREQ(to_string(DepKind::raw), "RaW");
  EXPECT_STREQ(to_string(DepKind::war), "WaR");
  EXPECT_STREQ(to_string(DepKind::waw), "WaW");
}

// ---------------------------------------------------------------- builder

TEST(Builder, ReadAfterWriteCreatesEdge) {
  DagBuilder b;
  double x;
  const DataRef w[] = {write_ref(&x)};
  const DataRef r[] = {read_ref(&x)};
  const NodeId writer = b.submit("w", w);
  const NodeId reader = b.submit("r", r);
  ASSERT_EQ(b.graph().edge_count(), 1u);
  EXPECT_EQ(b.graph().edges()[0].from, writer);
  EXPECT_EQ(b.graph().edges()[0].to, reader);
  EXPECT_EQ(b.graph().edges()[0].kind, DepKind::raw);
}

TEST(Builder, ConcurrentReadersShareNoEdges) {
  DagBuilder b;
  double x;
  const DataRef w[] = {write_ref(&x)};
  const DataRef r[] = {read_ref(&x)};
  b.submit("w", w);
  b.submit("r1", r);
  b.submit("r2", r);
  b.submit("r3", r);
  // Three RaW edges from the writer; no reader-to-reader edges.
  EXPECT_EQ(b.graph().edge_count(), 3u);
  for (const Edge& e : b.graph().edges()) {
    EXPECT_EQ(e.from, 0u);
    EXPECT_EQ(e.kind, DepKind::raw);
  }
}

TEST(Builder, WriteAfterReadersCreatesWarEdges) {
  DagBuilder b;
  double x;
  const DataRef w[] = {write_ref(&x)};
  const DataRef r[] = {read_ref(&x)};
  b.submit("w0", w);
  b.submit("r1", r);
  b.submit("r2", r);
  const NodeId w2 = b.submit("w3", w);
  // Edges: w0->r1, w0->r2 (RaW), r1->w3, r2->w3 (WaR).
  EXPECT_EQ(b.graph().edge_count(), 4u);
  std::size_t war = 0;
  for (const Edge& e : b.graph().edges()) {
    if (e.kind == DepKind::war) {
      ++war;
      EXPECT_EQ(e.to, w2);
    }
  }
  EXPECT_EQ(war, 2u);
}

TEST(Builder, WriteAfterWriteCreatesWawEdge) {
  DagBuilder b;
  double x;
  const DataRef w[] = {write_ref(&x)};
  b.submit("w0", w);
  b.submit("w1", w);
  ASSERT_EQ(b.graph().edge_count(), 1u);
  EXPECT_EQ(b.graph().edges()[0].kind, DepKind::waw);
}

TEST(Builder, ReadWriteActsAsBoth) {
  DagBuilder b;
  double x;
  const DataRef rw[] = {rw_ref(&x)};
  b.submit("t0", rw);
  b.submit("t1", rw);
  b.submit("t2", rw);
  // A chain t0 -> t1 -> t2.
  EXPECT_EQ(b.graph().edge_count(), 2u);
  EXPECT_EQ(b.graph().successors(0), std::vector<NodeId>{1});
  EXPECT_EQ(b.graph().successors(1), std::vector<NodeId>{2});
}

TEST(Builder, DuplicateEdgesCoalesced) {
  DagBuilder b;
  double x, y;
  const DataRef w[] = {write_ref(&x), write_ref(&y)};
  const DataRef r[] = {read_ref(&x), read_ref(&y)};
  b.submit("w", w);
  b.submit("r", r);
  // Two RaW hazards between the same pair -> one edge (paper Figure 1
  // shows such double dependences; the graph keeps a single edge).
  EXPECT_EQ(b.graph().edge_count(), 1u);
}

TEST(Builder, RejectsInvalidRefs) {
  DagBuilder b;
  const DataRef null_ref[] = {read_ref(nullptr)};
  EXPECT_THROW(b.submit("bad", null_ref), InvalidArgument);
  double x;
  const DataRef no_mode[] = {DataRef{&x, false, false}};
  EXPECT_THROW(b.submit("bad", no_mode), InvalidArgument);
}

TEST(Builder, RandomStreamsProduceForwardEdgesOnly) {
  // Property: any access stream yields edges with from < to and an acyclic
  // graph (topological_order succeeds).
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    DagBuilder b;
    double objects[6];
    for (int task = 0; task < 50; ++task) {
      std::vector<DataRef> refs;
      const int nrefs = 1 + static_cast<int>(rng.uniform_index(3));
      for (int r = 0; r < nrefs; ++r) {
        DataRef ref;
        ref.address = &objects[rng.uniform_index(6)];
        ref.read = rng.uniform() < 0.7;
        ref.write = !ref.read || rng.uniform() < 0.4;
        refs.push_back(ref);
      }
      b.submit("t", refs);
    }
    const TaskGraph& g = b.graph();
    for (const Edge& e : g.edges()) {
      EXPECT_LT(e.from, e.to);
    }
    EXPECT_EQ(topological_order(g).size(), g.node_count());
  }
}

// ------------------------------------------------------------- algorithms

TaskGraph diamond() {
  // a -> b, a -> c, b -> d, c -> d; weights 1, 2, 5, 1.
  TaskGraph g;
  g.add_node("a", 1.0);
  g.add_node("b", 2.0);
  g.add_node("c", 5.0);
  g.add_node("d", 1.0);
  g.add_edge(0, 1, DepKind::raw);
  g.add_edge(0, 2, DepKind::raw);
  g.add_edge(1, 3, DepKind::raw);
  g.add_edge(2, 3, DepKind::raw);
  return g;
}

TEST(Algorithms, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const Edge& e : g.edges()) {
    EXPECT_LT(position[e.from], position[e.to]);
  }
}

TEST(Algorithms, CriticalPathOfDiamond) {
  const CriticalPath cp = critical_path(diamond());
  EXPECT_DOUBLE_EQ(cp.length_us, 7.0);  // a -> c -> d
  ASSERT_EQ(cp.nodes.size(), 3u);
  EXPECT_EQ(cp.nodes[0], 0u);
  EXPECT_EQ(cp.nodes[1], 2u);
  EXPECT_EQ(cp.nodes[2], 3u);
}

TEST(Algorithms, CriticalPathOfChainIsSum) {
  TaskGraph g;
  for (int i = 0; i < 5; ++i) g.add_node("n", 2.0);
  for (NodeId i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1, DepKind::raw);
  EXPECT_DOUBLE_EQ(critical_path(g).length_us, 10.0);
  EXPECT_EQ(critical_path(g).nodes.size(), 5u);
}

TEST(Algorithms, EmptyGraph) {
  TaskGraph g;
  EXPECT_DOUBLE_EQ(critical_path(g).length_us, 0.0);
  EXPECT_TRUE(topological_order(g).empty());
  const DagMetrics m = compute_metrics(g);
  EXPECT_EQ(m.nodes, 0u);
}

TEST(Algorithms, LevelProfileOfDiamond) {
  const LevelProfile p = level_profile(diamond());
  EXPECT_EQ(p.depth, 3);
  ASSERT_EQ(p.width.size(), 3u);
  EXPECT_EQ(p.width[0], 1u);
  EXPECT_EQ(p.width[1], 2u);
  EXPECT_EQ(p.width[2], 1u);
  EXPECT_EQ(p.max_width, 2u);
}

TEST(Algorithms, MetricsComputeParallelism) {
  const DagMetrics m = compute_metrics(diamond());
  EXPECT_EQ(m.nodes, 4u);
  EXPECT_EQ(m.edges, 4u);
  EXPECT_DOUBLE_EQ(m.total_work_us, 9.0);
  EXPECT_DOUBLE_EQ(m.critical_path_us, 7.0);
  EXPECT_NEAR(m.average_parallelism, 9.0 / 7.0, 1e-12);
}

// --------------------------------------------------------------------- dot

TEST(Dot, RendersNodesAndEdges) {
  DotOptions options;
  options.annotate_edges = true;
  options.label_weights = true;
  const std::string dot = render_dot(diamond(), options);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("RaW"), std::string::npos);
  // All four nodes present.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos);
  }
}

TEST(Dot, KernelColorsApplied) {
  TaskGraph g;
  g.add_node("dgemm");
  const std::string dot = render_dot(g);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

}  // namespace
}  // namespace tasksim::dag
