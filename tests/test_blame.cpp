// Tests for the causal-blame pipeline (DESIGN.md §13): the blame budget
// partition, lifecycle-derived annotations and their text v2 round-trip,
// same-seed determinism, the trace differ, the shared exporter escaping,
// and the hedge flow arrows in the Chrome export.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "sim/fault_injection.hpp"
#include "stats/distribution.hpp"
#include "trace/blame.hpp"
#include "trace/chrome_export.hpp"
#include "trace/diff.hpp"
#include "trace/escape.hpp"
#include "trace/lifecycle.hpp"
#include "trace/svg_export.hpp"
#include "trace/text_io.hpp"
#include "trace/trace.hpp"

namespace tasksim::trace {
namespace {

sim::KernelModelSet constant_models() {
  sim::KernelModelSet models;
  models.set_model("dpotrf", std::make_unique<stats::ConstantDist>(120.0));
  models.set_model("dtrsm", std::make_unique<stats::ConstantDist>(80.0));
  models.set_model("dsyrk", std::make_unique<stats::ConstantDist>(90.0));
  models.set_model("dgemm", std::make_unique<stats::ConstantDist>(100.0));
  models.set_model("dchain", std::make_unique<stats::ConstantDist>(100.0));
  return models;
}

harness::RunResult small_run(const std::string& fault_spec = "",
                             harness::Algorithm algorithm =
                                 harness::Algorithm::cholesky,
                             bool master_only = false) {
  harness::ExperimentConfig config;
  config.scheduler = "quark";
  config.algorithm = algorithm;
  config.n = 192;
  config.nb = 64;
  config.workers = master_only ? 1 : 2;
  config.master_participates = master_only;
  config.seed = 7;
  config.blame = true;
  config.watchdog_timeout_us = 10e6;
  if (!fault_spec.empty()) {
    config.faults = sim::parse_fault_spec(fault_spec);
    config.max_task_retries = 32;
  }
  const sim::KernelModelSet models = constant_models();
  return harness::run_simulated(config, models);
}

std::string trace_bytes(const Trace& trace) {
  std::ostringstream os;
  save_trace(trace, os);
  return os.str();
}

// --- the budget is a partition ------------------------------------------

TEST(Blame, BudgetPartitionsTheMakespan) {
  const harness::RunResult run = small_run();
  ASSERT_TRUE(run.blame);
  const BlameReport& report = *run.blame;
  EXPECT_TRUE(report.annotated);
  EXPECT_GT(report.makespan_us, 0.0);
  EXPECT_NEAR(report.coverage(), 1.0, 1e-6);
  for (double total : report.totals) EXPECT_GE(total, 0.0);
  // Mutual exclusivity: every waterfall tile's parts sum to its width.
  double prev_end = report.t0_us;
  for (const BlameStep& step : report.waterfall) {
    double parts = 0.0;
    for (double p : step.parts) parts += p;
    EXPECT_NEAR(parts, step.virtual_end_us - prev_end, 1e-6);
    prev_end = step.virtual_end_us;
  }
  EXPECT_DOUBLE_EQ(prev_end, report.t0_us + report.makespan_us);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("tasksim-blame-v1"), std::string::npos);
  EXPECT_NE(report.to_string().find("compute"), std::string::npos);
}

TEST(Blame, ProducerFloorContinuesTheChainThroughTheProducer) {
  // Lane 1 runs the producer [0,120]; lane 0 runs [0,100] and then the
  // consumer [150,250] whose recorded floor (120) is the producer's end.
  // The chain walks consumer -> producer; the 30 µs between the floor and
  // the consumer's start has no recorded cause and lands in lane_idle.
  Trace t("hand");
  t.record(0, "a", 0, 0.0, 100.0);
  t.record(1, "p", 1, 0.0, 120.0);
  t.record(2, "b", 0, 150.0, 250.0);
  std::unordered_map<std::uint64_t, TraceAnnotation> notes;
  notes[2] = TraceAnnotation{120.0, 0.0, 0.0, 0};
  t.annotate(notes);
  const BlameReport report = build_blame(t);
  EXPECT_TRUE(report.annotated);
  const auto cat = [&](BlameCategory c) {
    return report.totals[static_cast<std::size_t>(static_cast<int>(c))];
  };
  ASSERT_EQ(report.waterfall.size(), 2u);
  EXPECT_EQ(report.waterfall[0].task_id, 1u);
  EXPECT_EQ(report.waterfall[1].task_id, 2u);
  EXPECT_NEAR(cat(BlameCategory::compute), 220.0, 1e-9);
  EXPECT_NEAR(cat(BlameCategory::dependency), 0.0, 1e-9);
  EXPECT_NEAR(cat(BlameCategory::lane_idle), 30.0, 1e-9);
  EXPECT_NEAR(report.coverage(), 1.0, 1e-9);
}

TEST(Blame, MissingProducerChargesDependency) {
  // The consumer's floor (120) names a producer absent from the trace (a
  // truncated capture): the chain terminates at the consumer and the gap
  // up to the floor is charged to dependency, the rest to lane_idle.
  Trace t("truncated");
  t.record(0, "a", 0, 0.0, 100.0);
  t.record(1, "b", 0, 150.0, 250.0);
  std::unordered_map<std::uint64_t, TraceAnnotation> notes;
  notes[0] = TraceAnnotation{0.0, 0.0, 0.0, 0};
  notes[1] = TraceAnnotation{120.0, 0.0, 0.0, 0};
  t.annotate(notes);
  const BlameReport report = build_blame(t);
  const auto cat = [&](BlameCategory c) {
    return report.totals[static_cast<std::size_t>(static_cast<int>(c))];
  };
  ASSERT_EQ(report.waterfall.size(), 1u);
  EXPECT_EQ(report.waterfall[0].task_id, 1u);
  EXPECT_NEAR(cat(BlameCategory::compute), 100.0, 1e-9);
  EXPECT_NEAR(cat(BlameCategory::dependency), 120.0, 1e-9);
  EXPECT_NEAR(cat(BlameCategory::lane_idle), 30.0, 1e-9);
  EXPECT_NEAR(report.coverage(), 1.0, 1e-9);
}

TEST(Blame, UnannotatedTraceStillTiles) {
  Trace t("plain");
  t.record(0, "a", 0, 0.0, 100.0);
  t.record(1, "b", 0, 130.0, 200.0);
  const BlameReport report = build_blame(t);
  EXPECT_FALSE(report.annotated);
  // The tiling is exhaustive even without floors; the gap lands in the
  // residual categories, never in dependency/submit_lag.
  EXPECT_NEAR(report.coverage(), 1.0, 1e-9);
  const auto cat = [&](BlameCategory c) {
    return report.totals[static_cast<std::size_t>(static_cast<int>(c))];
  };
  EXPECT_DOUBLE_EQ(cat(BlameCategory::dependency), 0.0);
  EXPECT_DOUBLE_EQ(cat(BlameCategory::submit_lag), 0.0);
}

TEST(Blame, RetryRunChargesRetryBackoff) {
  const harness::RunResult run =
      small_run("dchain:p=0.5,frac=0.5", harness::Algorithm::chains);
  ASSERT_TRUE(run.blame);
  EXPECT_GT(run.failed_attempts, 0u);
  const double retry_us = run.blame->totals[static_cast<std::size_t>(
      static_cast<int>(BlameCategory::retry_backoff))];
  EXPECT_GT(retry_us, 0.0);
  // The annotated timeline carries the retried flag and the folded backoff
  // on the affected tasks.
  bool saw_retry_annotation = false;
  for (const TraceEvent& e : run.timeline.events()) {
    if ((e.flags & kTraceFlagRetried) != 0 && e.retry_backoff_us > 0.0) {
      saw_retry_annotation = true;
      break;
    }
  }
  EXPECT_TRUE(saw_retry_annotation);
}

// --- annotations survive the text v2 round-trip -------------------------

TEST(Blame, AnnotationsRoundTripThroughTextV2) {
  const harness::RunResult run = small_run();
  ASSERT_TRUE(run.timeline.has_annotations());
  const std::string saved = trace_bytes(run.timeline);
  std::istringstream is(saved);
  const Trace loaded = load_trace(is);
  EXPECT_TRUE(loaded.has_annotations());
  EXPECT_EQ(loaded.size(), run.timeline.size());
  // Byte-stable: saving the loaded trace reproduces the document.
  EXPECT_EQ(trace_bytes(loaded), saved);
  // Analysis-stable: blame built from the reloaded trace matches blame
  // built from the live one (the tools/analyze path).
  EXPECT_EQ(build_blame(loaded).to_json(), build_blame(run.timeline).to_json());
}

TEST(Blame, TextV2PreservesFloorsFlagsAndBackoff) {
  Trace t("fields");
  t.record(3, "dgemm", 1, 10.0, 60.0);
  std::unordered_map<std::uint64_t, TraceAnnotation> notes;
  notes[3] = TraceAnnotation{7.5, 2.25, 12.5,
                             kTraceFlagRetried | kTraceFlagHedged};
  t.annotate(notes);
  std::istringstream is(trace_bytes(t));
  const Trace loaded = load_trace(is);
  const std::vector<TraceEvent> events = loaded.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].dep_floor_us, 7.5);
  EXPECT_DOUBLE_EQ(events[0].submit_floor_us, 2.25);
  EXPECT_DOUBLE_EQ(events[0].retry_backoff_us, 12.5);
  EXPECT_EQ(events[0].flags, kTraceFlagRetried | kTraceFlagHedged);
}

// --- determinism: same seed, same bytes ---------------------------------

TEST(Blame, SameSeedMasterOnlyRunsAreByteIdentical) {
  // Master-only: zero spawned threads, the whole DAG is submitted before
  // the first task executes, so the schedule — and every derived document —
  // is a pure function of the DAG, the policy, and the seed.
  const harness::RunResult a =
      small_run("", harness::Algorithm::cholesky, /*master_only=*/true);
  const harness::RunResult b =
      small_run("", harness::Algorithm::cholesky, /*master_only=*/true);
  EXPECT_EQ(trace_bytes(a.timeline), trace_bytes(b.timeline));
  // The virtual blame document is byte-identical; the harness-attached
  // reports additionally carry real (wall) stage times, which legitimately
  // vary run to run.
  EXPECT_EQ(build_blame(a.timeline).to_json(), build_blame(b.timeline).to_json());
}

TEST(Blame, SweepPoolsBlameAcrossEngines) {
  // With base.blame set every engine carries a report: the fleet document
  // pools the category totals into a non-null "blame" section and each
  // engine row reports its own coverage.
  harness::SweepConfig sweep;
  sweep.base = [] {
    harness::ExperimentConfig config;
    config.scheduler = "quark";
    config.algorithm = harness::Algorithm::cholesky;
    config.n = 192;
    config.nb = 64;
    config.workers = 1;
    config.master_participates = true;
    config.seed = 7;
    config.blame = true;
    config.watchdog_timeout_us = 10e6;
    return config;
  }();
  sweep.engines = 2;
  sweep.concurrency = 1;
  const harness::SweepResult result =
      harness::run_sweep(sweep, constant_models());
  ASSERT_EQ(result.engines.size(), 2u);
  for (const harness::EngineRunResult& engine : result.engines) {
    ASSERT_TRUE(engine.ok) << engine.error;
    ASSERT_TRUE(engine.blame);
    EXPECT_NEAR(engine.blame->coverage(), 1.0, 1e-6);
  }
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"blame\":{\"engines\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"blame\":null"), std::string::npos);
  EXPECT_NE(json.find("\"blame_coverage\":"), std::string::npos);
}

// --- differential analysis ----------------------------------------------

TEST(Diff, NamesTheInjectedKernelClass) {
  const harness::RunResult clean = small_run();
  const harness::RunResult slow =
      small_run("dgemm:tailp=1,tailmult=3,tailshape=0");
  const TraceDiff diff = diff_traces(clean.timeline, slow.timeline);
  EXPECT_GT(diff.delta_us, 0.0);
  EXPECT_GT(diff.matched, 0u);
  EXPECT_EQ(diff.dominant_kernel, "dgemm");
  // Only dgemm's self time grew.
  const auto it = diff.kernels.find("dgemm");
  ASSERT_NE(it, diff.kernels.end());
  EXPECT_GT(it->second.d_self_us, 0.0);
  const std::string json = diff.to_json();
  EXPECT_NE(json.find("tasksim-diff-v1"), std::string::npos);
  EXPECT_NE(diff.to_string().find("dgemm"), std::string::npos);
}

TEST(Diff, NamesRetryBackoffAsTheDominantCategory) {
  const harness::RunResult clean =
      small_run("", harness::Algorithm::chains);
  const harness::RunResult faulty =
      small_run("dchain:p=0.5,frac=0.5", harness::Algorithm::chains);
  EXPECT_TRUE(faulty.poisoned.empty());
  const TraceDiff diff = diff_traces(clean.timeline, faulty.timeline);
  EXPECT_GT(diff.delta_us, 0.0);
  EXPECT_EQ(diff.dominant_category, "retry_backoff");
}

TEST(Diff, AlignsByIdentityKernelAndOrdinal) {
  // Run B decorates one label with the engine's !suffix and shifts every
  // id; alignment must still pair the i-th dgemm with the i-th dgemm.
  Trace a("a");
  a.record(0, "dgemm", 0, 0.0, 100.0);
  a.record(1, "dgemm", 0, 100.0, 200.0);
  a.record(2, "dtrsm", 0, 200.0, 280.0);
  Trace b("b");
  b.record(10, "dgemm", 0, 0.0, 100.0);
  b.record(11, "dgemm!failed", 0, 100.0, 150.0);
  b.record(11, "dgemm", 0, 150.0, 300.0);
  b.record(12, "dtrsm", 0, 300.0, 380.0);
  const TraceDiff diff = diff_traces(a, b);
  EXPECT_EQ(diff.matched, 3u);
  EXPECT_EQ(diff.only_a, 0u);
  EXPECT_EQ(diff.only_b, 0u);
  // The second dgemm's self time grew by the failed attempt (50) plus the
  // longer final span (150 vs 100): +100 in total.
  bool found = false;
  for (const TaskDelta& d : diff.top_regressions) {
    if (d.kernel == "dgemm" && d.ordinal == 1) {
      EXPECT_EQ(d.task_a, 1u);
      EXPECT_EQ(d.task_b, 11u);
      EXPECT_NEAR(d.d_self_us, 100.0, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(diff.dominant_kernel, "dgemm");
}

// --- exporter escaping (shared trace/escape helpers) --------------------

TEST(Escape, JsonEscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(escape_json("plain"), "plain");
  EXPECT_EQ(escape_json("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_json("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_json("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(escape_json(std::string("a\x01z")), "a\\u0001z");
}

TEST(Escape, XmlEscapesEntitiesAndControls) {
  EXPECT_EQ(escape_xml("plain"), "plain");
  EXPECT_EQ(escape_xml("<&>\"'"), "&lt;&amp;&gt;&quot;&apos;");
  EXPECT_EQ(escape_xml("a\nb"), "a&#10;b");
  // C0 controls XML 1.0 forbids outright become U+FFFD.
  EXPECT_EQ(escape_xml(std::string("a\x01z")), "a\xEF\xBF\xBDz");
}

TEST(Escape, HostileKernelLabelsSurviveTheExporters) {
  const std::string hostile = "<dgemm> & \"pwn\"\n\x02!failed";
  Trace t("label <&> \"quoted\"");
  t.record(0, hostile, 0, 0.0, 100.0);
  t.record(1, "dtrsm", 1, 100.0, 180.0);

  const std::string svg = render_svg(t);
  EXPECT_EQ(svg.find("<dgemm>"), std::string::npos);
  EXPECT_NE(svg.find("&lt;dgemm&gt;"), std::string::npos);
  // No raw C0 control bytes survive into the XML document.
  for (char c : svg) {
    const unsigned char u = static_cast<unsigned char>(c);
    EXPECT_TRUE(u == '\n' || u == '\t' || u >= 0x20) << "raw control byte";
  }

  const std::string chrome = render_chrome_json(t);
  EXPECT_NE(chrome.find("\\\"pwn\\\""), std::string::npos);
  EXPECT_NE(chrome.find("\\n"), std::string::npos);
  // Newlines separate JSON tokens (document formatting); no other raw
  // control byte may survive into the document.
  for (char c : chrome) {
    const unsigned char u = static_cast<unsigned char>(c);
    EXPECT_TRUE(u == '\n' || u >= 0x20) << "raw control byte";
  }
}

// --- hedge flow arrows in the Chrome export -----------------------------

TEST(ChromeExport, HedgeFlowArrowsPairDuplicateAndOriginal) {
  using flightrec::Event;
  using flightrec::EventType;
  flightrec::Stream stream;
  auto push = [&](EventType type, std::uint64_t task, int worker, double a,
                  double b, std::uint64_t other, double wall) {
    Event e;
    e.type = type;
    e.task = task;
    e.worker = worker;
    e.a = a;
    e.b = b;
    e.other = other;
    e.wall_us = wall;
    stream.events.push_back(e);
  };
  // Task 1 straggles on worker 0; duplicate 2 launches on worker 1 at
  // virtual 50 and wins with completion 120.
  push(EventType::task_submit, 1, -1, 0.0, 0.0, 0, 1.0);
  push(EventType::task_dispatch, 1, 0, 0.0, 0.0, 0, 2.0);
  push(EventType::teq_enter, 1, 0, 0.0, 200.0, 1, 3.0);
  push(EventType::hedge_launch, 2, 1, 50.0, 120.0, 1, 4.0);
  push(EventType::hedge_win, 1, 0, 120.0, 80.0, 2, 5.0);
  push(EventType::task_return, 1, 0, 120.0, 0.0, 0, 6.0);
  stream.kernels[1] = "dgemm";
  const LifecycleLog log = build_lifecycle(std::move(stream));
  const std::vector<std::string> events = render_lifecycle_events(log, 1);
  bool saw_hedge_start = false;
  bool saw_hedge_finish = false;
  bool saw_win = false;
  for (const std::string& e : events) {
    if (e.find("\"cat\":\"hedge\"") == std::string::npos) continue;
    if (e.find("\"ph\":\"s\"") != std::string::npos) saw_hedge_start = true;
    if (e.find("\"ph\":\"f\"") != std::string::npos) saw_hedge_finish = true;
    if (e.find("hedge-win") != std::string::npos) saw_win = true;
  }
  EXPECT_TRUE(saw_hedge_start);
  EXPECT_TRUE(saw_hedge_finish);
  EXPECT_TRUE(saw_win);
}

}  // namespace
}  // namespace tasksim::trace
