// analyze.cpp — offline trace forensics: "why is this run slow, and why
// did it regress?" (DESIGN.md §13).
//
// Subcommands over saved traces (text_io format; v2 traces carry the blame
// annotations the harness persists when ExperimentConfig::blame is on):
//
//   analyze blame --trace run.trace [--json] [--out report.json] [--top N]
//     Tile the makespan into mutually-exclusive wait-state categories
//     along the executed critical path and print the budget + waterfall.
//
//   analyze waterfall --trace run.trace [--top N] [--json]
//     The chain-link view: every binding-chain link in timeline order with
//     its gap tiling — the long-form version of blame's ranked summary.
//
//   analyze diff --baseline a.trace --trace b.trace [--json] [--top N]
//     Align the two runs by stable task identity (kernel, ordinal) and
//     attribute the makespan delta to tasks, kernel classes, and blame
//     categories: "dgemm grew 40% and the shift is retry_backoff".
//
// --json prints the stable machine-readable document ("tasksim-blame-v1" /
// "tasksim-diff-v1") instead of text; --out writes it to a file as well.
#include <cstdio>
#include <fstream>
#include <string>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "trace/blame.hpp"
#include "trace/diff.hpp"
#include "trace/text_io.hpp"

using namespace tasksim;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <blame|waterfall|diff> [options]\n"
               "  blame      --trace FILE [--json] [--out FILE] [--top N]\n"
               "  waterfall  --trace FILE [--json] [--top N]\n"
               "  diff       --baseline FILE --trace FILE [--json] "
               "[--out FILE] [--top N]\n"
               "run '%s <subcommand> --help' for details\n",
               argv0, argv0);
  return 1;
}

/// Write `document` to `path` (used for --out alongside stdout output).
void write_file(const std::string& path, const std::string& document) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("cannot open output file '" + path + "'");
  out << document << "\n";
}

int run_blame(int argc, char** argv, bool waterfall_view) {
  std::string trace_path, out_path;
  bool json = false;
  int top = waterfall_view ? 0 : 12;
  CliParser cli(waterfall_view ? "analyze waterfall" : "analyze blame",
                waterfall_view
                    ? "chain-link waterfall of a saved trace's makespan"
                    : "makespan blame budget of a saved trace");
  cli.add_string("trace", &trace_path, "trace file to analyze (text format)");
  cli.add_flag("json", &json, "print the tasksim-blame-v1 JSON document");
  cli.add_string("out", &out_path, "also write the JSON document here");
  cli.add_int("top", &top, "waterfall links to print (0 = all)");
  if (!cli.parse(argc, argv)) return 0;
  if (trace_path.empty()) {
    std::fprintf(stderr, "error: --trace is required\n%s", cli.usage().c_str());
    return 1;
  }
  const trace::Trace trace = trace::load_trace(trace_path);
  const trace::BlameReport report = trace::build_blame(trace);
  if (!out_path.empty()) write_file(out_path, report.to_json());
  if (json) {
    std::printf("%s\n", report.to_json().c_str());
    return 0;
  }
  if (waterfall_view) {
    std::printf("waterfall: %s (%zu links, makespan %s)\n", trace_path.c_str(),
                report.waterfall.size(),
                format_duration_us(report.makespan_us).c_str());
    const std::size_t limit =
        top > 0 ? static_cast<std::size_t>(top) : report.waterfall.size();
    std::size_t shown = 0;
    for (const trace::BlameStep& step : report.waterfall) {
      if (shown++ >= limit) break;
      std::printf("  [%9.1f, %9.1f] w%-2d %-24s",
                  step.virtual_start_us - report.t0_us,
                  step.virtual_end_us - report.t0_us, step.worker,
                  (step.kernel + strprintf("#%llu",
                                           static_cast<unsigned long long>(
                                               step.task_id)))
                      .c_str());
      for (int c = 0; c < trace::kBlameCategoryCount; ++c) {
        const double us = step.parts[static_cast<std::size_t>(c)];
        if (us <= 0.0) continue;
        std::printf(" %s=%.1f",
                    trace::to_string(static_cast<trace::BlameCategory>(c)),
                    us);
      }
      std::printf("\n");
    }
    if (report.waterfall.size() > limit) {
      std::printf("  ... %zu more links (raise --top)\n",
                  report.waterfall.size() - limit);
    }
    std::printf("coverage: %.1f%% of the makespan attributed%s\n",
                100.0 * report.coverage(),
                report.annotated ? "" : " [no annotations: floors collapsed]");
  } else {
    std::fputs(
        report.to_string(top > 0 ? static_cast<std::size_t>(top) : 12).c_str(),
        stdout);
  }
  return 0;
}

int run_diff(int argc, char** argv) {
  std::string baseline_path, trace_path, out_path;
  bool json = false;
  int top = 10;
  CliParser cli("analyze diff",
                "attribute the makespan delta between two saved traces");
  cli.add_string("baseline", &baseline_path, "baseline (run A) trace file");
  cli.add_string("trace", &trace_path, "regressed (run B) trace file");
  cli.add_flag("json", &json, "print the tasksim-diff-v1 JSON document");
  cli.add_string("out", &out_path, "also write the JSON document here");
  cli.add_int("top", &top, "regressing tasks to rank");
  if (!cli.parse(argc, argv)) return 0;
  if (baseline_path.empty() || trace_path.empty()) {
    std::fprintf(stderr, "error: --baseline and --trace are required\n%s",
                 cli.usage().c_str());
    return 1;
  }
  const trace::Trace a = trace::load_trace(baseline_path);
  const trace::Trace b = trace::load_trace(trace_path);
  const trace::TraceDiff diff = trace::diff_traces(
      a, b, top > 0 ? static_cast<std::size_t>(top) : 0);
  if (!out_path.empty()) write_file(out_path, diff.to_json());
  if (json) {
    std::printf("%s\n", diff.to_json().c_str());
  } else {
    std::fputs(
        diff.to_string(top > 0 ? static_cast<std::size_t>(top) : 10).c_str(),
        stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string subcommand = argv[1];
  // Shift the subcommand out so CliParser sees its own argv[0].
  argv[1] = argv[0];
  try {
    if (subcommand == "blame") return run_blame(argc - 1, argv + 1, false);
    if (subcommand == "waterfall") return run_blame(argc - 1, argv + 1, true);
    if (subcommand == "diff") return run_diff(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "error: unknown subcommand '%s'\n", subcommand.c_str());
  return usage(argv[0]);
}
