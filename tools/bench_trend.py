#!/usr/bin/env python3
"""Concatenate BENCH_*.json documents into one perf-trajectory table.

CI uploads one BENCH_<name>.json artifact per perf benchmark (TEQ wakeup
accounting, §V-E race accuracy, simulator overhead, sweep fleet
throughput, lookahead ablation).  This tool flattens whichever subset of
those documents exists into a single markdown table — one row per
(benchmark, cell, headline metric) — so the CI job summary shows the
whole perf trajectory of the commit at a glance and regressions are
visible without downloading artifacts.

Usage:  bench_trend.py BENCH_teq.json BENCH_lookahead.json ...
        bench_trend.py BENCH_*.json >> "$GITHUB_STEP_SUMMARY"

Unknown schemas degrade to a generic rendering of their numeric fields
rather than failing: the trajectory must keep printing when a new
benchmark lands before this tool learns its schema.
"""

import json
import sys


def fmt(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def rows_teq(doc):
    # tasksim-bench-teq-v1 is a merge wrapper: a micro document (contended /
    # uncontended counters) plus the ablation's per-cell accounting.
    for sub in doc.get("documents", [doc]):
        if "contended" in sub:
            for cell in ("uncontended", "contended"):
                stats = sub.get(cell)
                if stats:
                    yield ("teq-micro", cell, "wakeups/completion",
                           fmt(stats["wakeups_per_completion"]))
        for cell in sub.get("cells", []):
            name = f"{cell['scheduler']}/{cell['mitigation']}"
            yield ("teq", name, "wakeups/completion",
                   fmt(cell["teq"]["wakeups_per_completion"]))
            yield ("teq", name, "worker wakeups/task",
                   fmt(cell["worker_wakeups_per_task"]))


def rows_race(doc):
    for cell in doc.get("cells", []):
        name = f"{cell['scheduler']}/{cell['mitigation']}"
        # No pipes in cell text — it breaks the markdown table.
        yield ("race", name, "mean abs err %",
               fmt(cell["mean_abs_error_pct"]))
        yield ("race", name, "start-order tau",
               fmt(cell["mean_start_order_tau"]))


def rows_overhead(doc):
    for cell in doc.get("cells", []):
        name = f"{cell['scheduler']}/{cell['mitigation']}"
        yield ("overhead", name, "sim wall / real wall",
               fmt(cell["wall_over_real"]))


def rows_lookahead(doc):
    for cell in doc.get("cells", []):
        name = (f"{cell['scheduler']}/{cell['workers']}w/"
                f"{cell['mode']}-{cell['lookahead_us']:g}")
        yield ("lookahead", name, "speedup", fmt(cell["speedup"]))
        yield ("lookahead", name, "error %", fmt(cell["error_pct"]))


def rows_tail(doc):
    for cell in doc.get("cells", []):
        name = f"{cell['workload']}/{cell['policy']}"
        yield ("tail", name, "makespan us", fmt(cell["makespan_us"]))
        if cell.get("workload") == "tail" and cell.get("policy") != "none":
            yield ("tail", name, "recovery %", fmt(cell["recovery_pct"]))
        if cell.get("hedges_launched", 0):
            yield ("tail", name, "hedges", fmt(cell["hedges_launched"]))
            yield ("tail", name, "waste %", fmt(cell["waste_pct"]))
        if cell.get("violations", 0):
            yield ("tail", name, "race violations", fmt(cell["violations"]))


def rows_blame(doc):
    # Per-scheduler blame-category shares; only nonzero shares get a row so
    # the all-compute baseline stays one line per scheduler.  Both sections
    # are optional — a partial document still renders.
    for cell in doc.get("cells", []):
        name = cell.get("scheduler", "-")
        if "coverage" in cell:
            yield ("blame", name, "coverage %", fmt(100.0 * cell["coverage"]))
        for category, share in sorted(cell.get("shares", {}).items()):
            if share:
                yield ("blame", name, f"{category} share %",
                       fmt(100.0 * share))
    for diff in doc.get("diffs", []):
        name = diff.get("name", "-")
        culprit = (f"{diff.get('dominant_kernel', '?')}/"
                   f"{diff.get('dominant_category', '?')}")
        yield ("blame-diff", name, "culprit", culprit)
        if "delta_us" in diff:
            yield ("blame-diff", name, "delta us", fmt(diff["delta_us"]))


def rows_sweep(doc):
    yield ("sweep", "fleet", "speedup", fmt(doc["speedup"]))
    fleet = doc.get("sweep", {}).get("fleet", {})
    if "makespan_us" in fleet:
        yield ("sweep", "fleet", "p95 makespan us",
               fmt(fleet["makespan_us"]["p95"]))


def rows_generic(doc, label):
    # Fallback: surface every top-level scalar so new schemas still show up.
    for key, value in doc.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            yield (label, "-", key, fmt(value))


RENDERERS = {
    "tasksim-bench-teq-v1": rows_teq,
    "tasksim-bench-race-v1": rows_race,
    "tasksim-bench-overhead-v1": rows_overhead,
    "tasksim-bench-lookahead-v1": rows_lookahead,
    "tasksim-bench-tail-v1": rows_tail,
    "tasksim-bench-blame-v1": rows_blame,
    "tasksim-bench-sweep-v1": rows_sweep,
}


def main(argv):
    paths = [a for a in argv[1:] if not a.startswith("-")]
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    rows = []
    for path in paths:
        try:
            doc = json.load(open(path))
        except (OSError, ValueError) as err:
            print(f"warning: skipping {path}: {err}", file=sys.stderr)
            continue
        schema = doc.get("schema", "?")
        renderer = RENDERERS.get(schema)
        if renderer is not None:
            rows.extend(renderer(doc))
        else:
            rows.extend(rows_generic(doc, schema))
    if not rows:
        # Seed the trajectory from the present run rather than failing the
        # CI summary step: an empty set (first run on a branch, expired
        # artifacts, a bench that wrote zero cells) still renders a table,
        # and the next run's rows append below it in the job summary.
        print("warning: no bench cells found", file=sys.stderr)
        rows = [("(none)", "-", "bench cells found", "0")]
    print("### Perf trajectory")
    print()
    print("| benchmark | cell | metric | value |")
    print("| --- | --- | --- | --- |")
    for bench, cell, metric, value in rows:
        print(f"| {bench} | {cell} | {metric} | {value} |")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
