// cholesky_sim.cpp — the paper's Cholesky case study on one scheduler.
//
// Pipeline: real tile-Cholesky run (numerically verified) → calibrate
// kernel models → simulated run → side-by-side comparison, plus DAG and
// trace artifacts (cholesky_dag.dot, cholesky_real.svg, cholesky_sim.svg).
//
// Run: ./cholesky_sim [--n 768] [--nb 96] [--workers 4] [--scheduler quark]
#include <cstdio>

#include "dag/algorithms.hpp"
#include "dag/dot_export.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "linalg/tile_cholesky.hpp"
#include "sched/factory.hpp"
#include "sched/observers.hpp"
#include "sched/submitter.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "trace/analysis.hpp"
#include "trace/svg_export.hpp"

using namespace tasksim;

int main(int argc, char** argv) {
  harness::ExperimentConfig config;
  config.algorithm = harness::Algorithm::cholesky;
  config.n = 768;
  config.nb = 96;
  config.workers = 4;
  config.verify_numerics = true;
  std::string scheduler = "quark";
  CliParser cli("cholesky_sim", "tile Cholesky: real run vs simulation");
  cli.add_int("n", &config.n, "matrix dimension (multiple of nb)");
  cli.add_int("nb", &config.nb, "tile size");
  cli.add_int("workers", &config.workers, "worker threads");
  cli.add_string("scheduler", &scheduler, "runtime spec");
  if (!cli.parse(argc, argv)) return 0;
  config.scheduler = scheduler;

  std::printf("tile Cholesky, n=%d nb=%d (NT=%d), %d workers, %s\n", config.n,
              config.nb, config.n / config.nb, config.workers,
              scheduler.c_str());

  // Real run with calibration.
  sim::CalibrationObserver calibration;
  const harness::RunResult real = harness::run_real(config, &calibration);
  std::printf("real     : makespan %s  %.3f Gflop/s  residual %.2e\n",
              format_duration_us(real.makespan_us).c_str(), real.gflops,
              real.residual.value_or(-1.0));

  // Fit the paper's candidate distributions and report the winners.
  const sim::KernelModelSet models = calibration.fit(sim::ModelFamily::best);
  for (const auto& name : models.kernel_names()) {
    std::printf("model    : %-8s %s (%zu samples)\n", name.c_str(),
                models.model(name).describe().c_str(),
                calibration.samples_for(name).size());
  }

  // Simulated run.
  const harness::RunResult sim = harness::run_simulated(config, models);
  std::printf("simulated: makespan %s  %.3f Gflop/s  (%+.2f%% vs real)"
              "  [quiescence timeouts: %llu]\n",
              format_duration_us(sim.makespan_us).c_str(), sim.gflops,
              100.0 * (sim.makespan_us - real.makespan_us) / real.makespan_us,
              static_cast<unsigned long long>(sim.quiescence_timeouts));
  std::printf("speedup  : simulation took %s vs real %s (%.2fx)\n",
              format_duration_us(sim.wall_us).c_str(),
              format_duration_us(real.wall_us).c_str(),
              real.wall_us / sim.wall_us);

  const auto comparison = trace::compare_traces(real.timeline, sim.timeline);
  std::printf("traces   : %s", comparison.to_string().c_str());

  // Artifacts: dependence DAG (paper Figure 1 analogue) and both traces on
  // one time axis (Figures 6-7 analogue).
  {
    sched::RuntimeConfig rc;
    rc.workers = 1;
    auto runtime = sched::make_runtime(scheduler, rc);
    sched::DagCaptureObserver capture;
    runtime->add_observer(&capture);
    sched::RealSubmitter submitter(*runtime);
    linalg::TileMatrix a = harness::make_input_matrix(config);
    linalg::tile_cholesky(a, submitter);
    dag::write_dot(capture.graph(), "cholesky_dag.dot");
    std::printf("dag      : %s -> cholesky_dag.dot\n",
                dag::compute_metrics(capture.graph()).to_string().c_str());
  }
  trace::SvgOptions svg;
  svg.time_span_us = std::max(real.makespan_us, sim.makespan_us);
  svg.title = "Cholesky real (virtual platform)";
  trace::write_svg(real.timeline, "cholesky_real.svg", svg);
  svg.title = "Cholesky simulated";
  trace::write_svg(sim.timeline, "cholesky_sim.svg", svg);
  std::printf("artifacts: cholesky_real.svg cholesky_sim.svg\n");
  return 0;
}
