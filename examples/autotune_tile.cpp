// autotune_tile.cpp — the paper's motivating use case (§VI-B): use the
// simulator inside an autotuning loop.  For each candidate tile size we
// calibrate on a small problem, then let the simulation predict full-size
// performance; only the winner would need a full real run.
//
// Run: ./autotune_tile [--n 1920] [--candidates 48,64,96,120,160,240]
//                      [--workers 4] [--algorithm cholesky|qr]
#include <cstdio>

#include "harness/autotune.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

using namespace tasksim;

int main(int argc, char** argv) {
  harness::ExperimentConfig base;
  base.algorithm = harness::Algorithm::cholesky;
  base.n = 1920;
  base.workers = 4;
  std::vector<int> candidates = {48, 64, 96, 120, 160, 240};
  std::string algorithm = "cholesky";
  std::string scheduler = "quark";
  CliParser cli("autotune_tile", "simulator-driven tile-size autotuning");
  cli.add_int("n", &base.n, "target matrix dimension");
  cli.add_int("workers", &base.workers, "worker threads");
  cli.add_int_list("candidates", &candidates, "tile sizes to evaluate");
  cli.add_string("algorithm", &algorithm, "cholesky or qr");
  cli.add_string("scheduler", &scheduler, "runtime spec");
  if (!cli.parse(argc, argv)) return 0;
  base.algorithm = harness::parse_algorithm(algorithm);
  base.scheduler = scheduler;

  std::printf("autotuning %s tile size for n=%d on %s (%d workers)\n",
              algorithm.c_str(), base.n, scheduler.c_str(), base.workers);

  const harness::AutotuneResult result =
      harness::autotune_tile_size(base, candidates);

  harness::TextTable table;
  table.set_headers({"nb", "n used", "predicted Gflop/s", "calibration",
                     "simulation"});
  for (const auto& c : result.candidates) {
    table.add_row({std::to_string(c.nb), std::to_string(c.n_used),
                   strprintf("%.3f", c.predicted_gflops),
                   format_duration_us(c.calibration_wall_us),
                   format_duration_us(c.simulation_wall_us)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nbest tile size: nb=%d (predicted %.3f Gflop/s), tuned in %s\n",
              result.best_nb, result.best_predicted_gflops,
              format_duration_us(result.total_wall_us).c_str());
  return 0;
}
