// qr_sim.cpp — the paper's QR case study, portable across all three
// schedulers: runs the same tile-QR factorization (real, verified) and its
// simulation on QUARK-, StarPU- and OmpSs-flavoured runtimes, showing the
// simulation layer is scheduler-agnostic (paper §III "Portability").
//
// Run: ./qr_sim [--n 576] [--nb 96] [--workers 4]
#include <cstdio>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"

using namespace tasksim;

int main(int argc, char** argv) {
  harness::ExperimentConfig base;
  base.algorithm = harness::Algorithm::qr;
  base.n = 576;
  base.nb = 96;
  base.workers = 4;
  base.verify_numerics = true;
  CliParser cli("qr_sim", "tile QR across all three schedulers");
  cli.add_int("n", &base.n, "matrix dimension (multiple of nb)");
  cli.add_int("nb", &base.nb, "tile size");
  cli.add_int("workers", &base.workers, "worker threads");
  if (!cli.parse(argc, argv)) return 0;

  std::printf("tile QR, n=%d nb=%d (NT=%d), %d workers\n", base.n, base.nb,
              base.n / base.nb, base.workers);

  harness::TextTable table;
  table.set_headers({"scheduler", "real Gflop/s", "sim Gflop/s", "error %",
                     "residual", "sim speedup"});
  const std::vector<std::string> schedulers = {"quark", "starpu/dmda",
                                               "ompss/bf"};
  for (const std::string& scheduler : schedulers) {
    harness::ExperimentConfig config = base;
    config.scheduler = scheduler;

    sim::CalibrationObserver calibration;
    const harness::RunResult real = harness::run_real(config, &calibration);
    const sim::KernelModelSet models =
        calibration.fit(sim::ModelFamily::best);
    const harness::RunResult sim = harness::run_simulated(config, models);

    const double err =
        100.0 * (sim.makespan_us - real.makespan_us) / real.makespan_us;
    table.add_row({scheduler, strprintf("%.3f", real.gflops),
                   strprintf("%.3f", sim.gflops), strprintf("%+.2f", err),
                   strprintf("%.2e", real.residual.value_or(-1.0)),
                   strprintf("%.2fx", real.wall_us / sim.wall_us)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
