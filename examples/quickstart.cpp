// quickstart.cpp — TaskSim in one file.
//
// 1. Build a QUARK-style superscalar runtime and submit a small task graph
//    (real execution, with dependences derived from data accesses).
// 2. Calibrate kernel-time models from that real run.
// 3. Re-run the same task graph in *simulation*: the same scheduler makes
//    all decisions, but tasks are replaced by calls into the simulation
//    library, producing a virtual trace and a predicted makespan.
//
// Run: ./quickstart [--workers N] [--scheduler quark|starpu/dmda|ompss/bf]
#include <cstdio>
#include <vector>

#include "sched/factory.hpp"
#include "sched/observers.hpp"
#include "sched/submitter.hpp"
#include "sim/calibration.hpp"
#include "sim/sim_engine.hpp"
#include "sim/sim_submitter.hpp"
#include "sim/virtual_platform.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/sysinfo.hpp"
#include "trace/analysis.hpp"

using namespace tasksim;

namespace {

// A toy workload: `stages` dependent stages; each stage writes its slot
// after reading the previous one, with `width` independent tasks per stage.
void submit_workload(sched::KernelSubmitter& submitter,
                     std::vector<double>& slots, int stages, int width) {
  for (int s = 0; s < stages; ++s) {
    for (int w = 0; w < width; ++w) {
      double* mine = &slots[static_cast<std::size_t>(w)];
      sched::AccessList accesses{sched::inout(mine)};
      if (w > 0) accesses.push_back(sched::in(&slots[w - 1]));
      submitter.submit(
          "spin",
          [mine] {
            // ~50us of real work.
            double x = *mine + 1.0;
            for (int i = 0; i < 20000; ++i) x = x * 1.0000001 + 1e-9;
            *mine = x;
          },
          std::move(accesses));
    }
  }
  submitter.finish();
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 2;
  int stages = 20;
  int width = 6;
  std::string scheduler = "quark";
  CliParser cli("quickstart", "TaskSim end-to-end walkthrough");
  cli.add_int("workers", &workers, "worker threads");
  cli.add_int("stages", &stages, "dependent stages in the toy workload");
  cli.add_int("width", &width, "independent tasks per stage");
  cli.add_string("scheduler", &scheduler, "runtime spec (see sched/factory.hpp)");
  if (!cli.parse(argc, argv)) return 0;

  sched::RuntimeConfig config;
  config.workers = workers;
  // Interleave workers fairly when the host has fewer cores than workers
  // (see DESIGN.md §3 on the virtual platform).
  config.yield_between_tasks = workers > hardware_threads();

  // --- 1. Real execution with calibration ------------------------------
  // The host may have fewer cores than workers, so the ground truth is the
  // virtual platform: the schedule the runtime actually chose, charged with
  // per-task thread-CPU durations (dedicated-core timeline).
  std::vector<double> slots(static_cast<std::size_t>(width), 0.0);
  sim::CalibrationObserver calibration;
  sim::VirtualPlatform platform;
  trace::Trace real_trace("real");
  double wall_makespan = 0.0;
  {
    auto runtime = sched::make_runtime(scheduler, config);
    runtime->add_observer(&platform);
    runtime->add_observer(&calibration);
    sched::TracingObserver tracer(&real_trace);
    runtime->add_observer(&tracer);
    sched::RealSubmitter submitter(*runtime);
    submit_workload(submitter, slots, stages, width);
    wall_makespan = real_trace.makespan_us();
    runtime->remove_observer(&tracer);
    runtime->remove_observer(&calibration);
    runtime->remove_observer(&platform);
  }
  const trace::Trace real_timeline = platform.replay();
  const double real_makespan = real_timeline.makespan_us();
  std::printf("real run     : %zu tasks on %d workers (%s)\n",
              real_trace.size(), workers, scheduler.c_str());
  std::printf("               wall makespan %s, dedicated-core makespan %s\n",
              format_duration_us(wall_makespan).c_str(),
              format_duration_us(real_makespan).c_str());

  // --- 2. Fit kernel models --------------------------------------------
  const sim::KernelModelSet models = calibration.fit(sim::ModelFamily::best);
  for (const auto& name : models.kernel_names()) {
    std::printf("model        : %s -> %s\n", name.c_str(),
                models.model(name).describe().c_str());
  }

  // --- 3. Simulated execution ------------------------------------------
  {
    auto runtime = sched::make_runtime(scheduler, config);
    sim::SimEngine engine(models);
    sim::SimSubmitter submitter(*runtime, engine);
    submit_workload(submitter, slots, stages, width);
    const double predicted = engine.trace().makespan_us();
    std::printf("simulated    : %zu tasks, predicted makespan %s\n",
                engine.trace().size(),
                format_duration_us(predicted).c_str());
    if (real_makespan > 0.0) {
      std::printf("prediction   : %+.2f%% vs real\n",
                  100.0 * (predicted - real_makespan) / real_makespan);
    }
    const auto comparison =
        trace::compare_traces(real_timeline, engine.trace());
    std::printf("trace match  : start-order tau=%.3f (1.0 = same order)\n",
                comparison.start_order_tau);
  }
  return 0;
}
