// trace_to_svg.cpp — convert a saved TaskSim trace (text format, paper
// §V-A) to an SVG visualization, with optional statistics.
//
// Run: ./trace_to_svg --input run.trace [--output run.svg] [--stats]
#include <cstdio>

#include "support/cli.hpp"
#include "support/strings.hpp"
#include "trace/analysis.hpp"
#include "trace/svg_export.hpp"
#include "trace/text_io.hpp"

using namespace tasksim;

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  bool stats = false;
  CliParser cli("trace_to_svg", "render a TaskSim trace file as SVG");
  cli.add_string("input", &input, "trace file to read");
  cli.add_string("output", &output, "SVG to write (default: <input>.svg)");
  cli.add_flag("stats", &stats, "also print trace statistics");
  if (!cli.parse(argc, argv)) return 0;
  if (input.empty()) {
    std::fprintf(stderr, "error: --input is required\n%s",
                 cli.usage().c_str());
    return 1;
  }
  if (output.empty()) output = input + ".svg";

  const trace::Trace trace = trace::load_trace(input);
  trace::SvgOptions options;
  options.title = trace.label().empty() ? input : trace.label();
  trace::write_svg(trace, output, options);
  std::printf("%s: %zu events, %d workers, makespan %s -> %s\n", input.c_str(),
              trace.size(), trace.worker_count(),
              format_duration_us(trace.makespan_us()).c_str(), output.c_str());
  if (stats) {
    std::fputs(trace::analyze(trace).to_string().c_str(), stdout);
  }
  return 0;
}
